"""Streaming dK generators: flat edge chunks straight into the CSR builder.

The eager 1K/2K generators in :mod:`repro.generators.pseudograph` and
:mod:`repro.generators.stochastic` materialize a Python :class:`SimpleGraph`
— per-node adjacency *sets*, hundreds of bytes per edge — which caps them
around n≈10^5.  The variants here emit flat ``(u, v)`` endpoint chunks
directly into a :class:`~repro.graph.mmap_io.CSRBuilder` (external
sort-by-key merge), so peak memory is bounded by the builder's spill
threshold and a 10^6–10^7-node topology streams onto disk as a
memory-mapped :class:`~repro.kernels.biggraph.BigGraph`.

Semantics match the eager constructions **distributionally**, not RNG
stream for stream:

* the pseudograph matchings assign node ids exactly like the eager code
  (sequential over ascending degree classes) and pair stubs/edge-ends by the
  same uniform shuffles, with self-loops dropped and parallel edges
  collapsed by the builder;
* the stochastic constructions use the fact that the Chung–Lu / block-model
  connection probability depends only on the endpoint degree classes: per
  class pair the edge count is one binomial draw (the sum of the per-pair
  Bernoullis) placed on distinct uniform pairs — the same model, drawn
  block-wise instead of pair-wise, which is what makes it O(m) instead of
  O(n²).

The sequential loop-avoiding 2K matching (``matching_2k``) is excluded:
its accept/reject step depends on the partially built adjacency, which is
inherently per-edge sequential and incompatible with streaming chunks.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.core.distributions import DegreeDistribution, JointDegreeDistribution
from repro.exceptions import GenerationError
from repro.graph.mmap_io import CSRBuilder
from repro.kernels.biggraph import BigGraph, _require_numpy
from repro.utils.rng import RngLike, ensure_rng

#: Endpoints emitted into the builder per chunk.
EDGE_CHUNK = 2_000_000


def _class_layout(node_counts: dict[int, int]) -> tuple[np.ndarray, np.ndarray, int]:
    """(degrees, first node id per class, next free id): ascending classes.

    Mirrors the eager generators' id convention — node ids are assigned
    sequentially over ascending degree classes starting at 0 — so streamed
    and eager graphs agree on which ids carry which target degree.
    """
    degrees = np.array(sorted(node_counts), dtype=np.int64)
    counts = np.array([node_counts[int(k)] for k in degrees], dtype=np.int64)
    starts = np.zeros(len(degrees) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    return degrees, starts, int(starts[-1])


def streaming_pseudograph_1k(
    one_k: DegreeDistribution,
    *,
    rng: RngLike = None,
    path=None,
    encoding: str = "raw",
    spill_threshold: int = 16_000_000,
    spill_dir=None,
) -> BigGraph:
    """Configuration-model (1K) graph, streamed into a BigGraph.

    Same construction as :func:`~repro.generators.pseudograph.
    pseudograph_1k`: ``k`` stubs per degree-``k`` node, one uniform shuffle,
    consecutive stubs paired; self-loops dropped, parallels collapsed.
    ``path`` persists the result as a BigGraph artifact directory (the
    returned graph is then memory-mapped from it).
    """
    _require_numpy()
    rng = ensure_rng(rng)
    if one_k.stub_count % 2:
        raise GenerationError("the degree distribution has an odd number of stubs")
    degrees, starts, n = _class_layout(dict(one_k.counts))
    builder = CSRBuilder(max(n, 1), spill_threshold=spill_threshold, spill_dir=spill_dir)
    node_degrees = np.repeat(degrees, np.diff(starts))
    stubs = np.repeat(np.arange(n, dtype=np.int64), node_degrees)
    if len(stubs):
        rng.shuffle(stubs)
        for begin in range(0, len(stubs) - 1, 2 * EDGE_CHUNK):
            end = min(begin + 2 * EDGE_CHUNK, len(stubs))
            builder.add_edges(stubs[begin:end:2], stubs[begin + 1 : end : 2])
    del stubs
    return builder.finalize(path, encoding=encoding, metadata={"method": "pseudograph", "d": 1})


def streaming_pseudograph_2k(
    jdd: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    path=None,
    encoding: str = "raw",
    spill_threshold: int = 16_000_000,
    spill_dir=None,
) -> BigGraph:
    """The paper's 2K pseudograph construction, streamed into a BigGraph.

    Edge ends labelled ``k`` are shuffled and grouped ``k`` at a time into
    the degree-``k`` nodes, exactly like :func:`~repro.generators.
    pseudograph.pseudograph_2k` — the per-degree slot arrays are the same
    shuffled structures, consumed class pair by class pair (sorted order)
    instead of edge by edge.
    """
    _require_numpy()
    rng = ensure_rng(rng)
    node_counts = jdd.node_counts()
    degrees, starts, next_id = _class_layout(node_counts)
    n = next_id + jdd.zero_degree_nodes
    builder = CSRBuilder(max(n, 1), spill_threshold=spill_threshold, spill_dir=spill_dir)
    # per-degree shuffled slot arrays: node id repeated `degree` times
    slots: dict[int, np.ndarray] = {}
    cursors: dict[int, int] = {}
    for position, degree in enumerate(degrees.tolist()):
        ids = np.arange(starts[position], starts[position + 1], dtype=np.int64)
        array = np.repeat(ids, degree)
        rng.shuffle(array)
        slots[degree] = array
        cursors[degree] = 0
    for k1, k2 in sorted(jdd.counts):
        count = jdd.counts[(k1, k2)]
        if count <= 0:
            continue
        if k1 == k2:
            begin = cursors[k1]
            segment = slots[k1][begin : begin + 2 * count]
            cursors[k1] = begin + 2 * count
            u, v = segment[0::2], segment[1::2]
        else:
            b1, b2 = cursors[k1], cursors[k2]
            u = slots[k1][b1 : b1 + count]
            v = slots[k2][b2 : b2 + count]
            cursors[k1], cursors[k2] = b1 + count, b2 + count
        for begin in range(0, len(u), EDGE_CHUNK):
            builder.add_edges(u[begin : begin + EDGE_CHUNK], v[begin : begin + EDGE_CHUNK])
    slots.clear()  # drop the stub arrays before finalize's peak
    return builder.finalize(path, encoding=encoding, metadata={"method": "pseudograph", "d": 2})


def _distinct_pairs(
    n_left: int,
    n_right: int,
    count: int,
    rng: np.random.Generator,
    *,
    same_class: bool,
    rounds: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Up to ``count`` distinct uniform pairs between two classes, vectorized.

    Unordered (diagonal excluded) when ``same_class``.  Oversample-and-unique
    with a bounded number of rounds: the eager ``_random_distinct_pairs`` has
    the same bounded-budget semantics, so falling marginally short on
    pathologically dense blocks matches the eager behavior.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    collected = np.empty(0, dtype=np.int64)
    for _ in range(rounds):
        need = count - len(collected)
        if need <= 0:
            break
        batch = need + need // 8 + 16
        i = rng.integers(0, n_left, size=batch, dtype=np.int64)
        j = rng.integers(0, n_right, size=batch, dtype=np.int64)
        if same_class:
            keep = i != j
            lo = np.minimum(i[keep], j[keep])
            hi = np.maximum(i[keep], j[keep])
            keys = lo * n_right + hi
        else:
            keys = i * n_right + j
        collected = np.unique(np.concatenate((collected, keys)))
    if len(collected) > count:
        collected = rng.permutation(collected)[:count]
    return collected // n_right, collected % n_right


def streaming_stochastic_1k(
    one_k: DegreeDistribution,
    *,
    rng: RngLike = None,
    path=None,
    encoding: str = "raw",
    spill_threshold: int = 16_000_000,
    spill_dir=None,
) -> BigGraph:
    """Chung–Lu (stochastic 1K) graph, streamed block-wise into a BigGraph.

    The eager per-pair Bernoulli with ``p = q_i q_j / Σq`` is drawn degree
    class by degree class: within a class pair every node pair shares the
    same ``p``, so the block's edge count is ``Binomial(possible, p)`` placed
    on distinct uniform pairs — the identical model at O(m) cost.
    """
    _require_numpy()
    rng = ensure_rng(rng)
    degrees, starts, n = _class_layout(dict(one_k.counts))
    builder = CSRBuilder(max(n, 1), spill_threshold=spill_threshold, spill_dir=spill_dir)
    total = float(sum(k * c for k, c in one_k.counts.items()))
    if n >= 2 and total > 0:
        live = [p for p, k in enumerate(degrees.tolist()) if k > 0]
        for a_pos in live:
            k1 = int(degrees[a_pos])
            s1 = int(starts[a_pos + 1] - starts[a_pos])
            for b_pos in live:
                if b_pos < a_pos:
                    continue
                k2 = int(degrees[b_pos])
                s2 = int(starts[b_pos + 1] - starts[b_pos])
                p = min(1.0, k1 * k2 / total)
                same = a_pos == b_pos
                possible = s1 * (s1 - 1) // 2 if same else s1 * s2
                if possible == 0 or p <= 0:
                    continue
                edge_target = int(rng.binomial(possible, p))
                i, j = _distinct_pairs(s1, s2, edge_target, rng, same_class=same)
                for begin in range(0, len(i), EDGE_CHUNK):
                    builder.add_edges(
                        int(starts[a_pos]) + i[begin : begin + EDGE_CHUNK],
                        int(starts[b_pos]) + j[begin : begin + EDGE_CHUNK],
                    )
    return builder.finalize(path, encoding=encoding, metadata={"method": "stochastic", "d": 1})


def streaming_stochastic_2k(
    jdd: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    path=None,
    encoding: str = "raw",
    spill_threshold: int = 16_000_000,
    spill_dir=None,
) -> BigGraph:
    """Degree-class block model (stochastic 2K), streamed into a BigGraph.

    The same block model as :func:`~repro.generators.stochastic.
    stochastic_2k` — ``p(k1,k2) = (q̄/n) P(k1,k2) / (P(k1) P(k2))`` capped at
    one, binomial edge counts per class pair, distinct uniform placement —
    with vectorized pair sampling instead of the per-pair rejection loop.
    """
    _require_numpy()
    rng = ensure_rng(rng)
    node_counts = jdd.node_counts()
    degrees, starts, next_id = _class_layout(node_counts)
    n_total = next_id + jdd.zero_degree_nodes
    builder = CSRBuilder(max(n_total, 1), spill_threshold=spill_threshold, spill_dir=spill_dir)
    one_k = jdd.to_lower()
    n = one_k.nodes
    if n:
        pmf_1k = one_k.pmf()
        pmf_2k = jdd.pmf()
        qbar = one_k.average_degree()
        position = {int(k): p for p, k in enumerate(degrees.tolist())}
        for (k1, k2), joint_probability in sorted(pmf_2k.items()):
            a_pos, b_pos = position.get(k1), position.get(k2)
            if a_pos is None or b_pos is None:
                continue
            s1 = int(starts[a_pos + 1] - starts[a_pos])
            s2 = int(starts[b_pos + 1] - starts[b_pos])
            p = min(1.0, (qbar / n) * joint_probability / (pmf_1k[k1] * pmf_1k[k2]))
            same = k1 == k2
            possible = s1 * (s1 - 1) // 2 if same else s1 * s2
            if possible == 0 or p <= 0:
                continue
            edge_target = int(rng.binomial(possible, p))
            i, j = _distinct_pairs(s1, s2, edge_target, rng, same_class=same)
            for begin in range(0, len(i), EDGE_CHUNK):
                builder.add_edges(
                    int(starts[a_pos]) + i[begin : begin + EDGE_CHUNK],
                    int(starts[b_pos]) + j[begin : begin + EDGE_CHUNK],
                )
    return builder.finalize(path, encoding=encoding, metadata={"method": "stochastic", "d": 2})


#: ``(method, d) -> streaming generator`` over the matching distribution type.
STREAMING_GENERATORS = {
    ("pseudograph", 1): streaming_pseudograph_1k,
    ("pseudograph", 2): streaming_pseudograph_2k,
    ("stochastic", 1): streaming_stochastic_1k,
    ("stochastic", 2): streaming_stochastic_2k,
}


__all__ = [
    "EDGE_CHUNK",
    "STREAMING_GENERATORS",
    "streaming_pseudograph_1k",
    "streaming_pseudograph_2k",
    "streaming_stochastic_1k",
    "streaming_stochastic_2k",
]
