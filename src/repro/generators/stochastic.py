"""Stochastic dK-graph constructions (Section 4.1.1 of the paper).

* 0K: classical Erdős–Rényi ``G(n, p)`` with ``p = k̄/n``.
* 1K: hidden-variable / Chung–Lu construction: nodes carry expected degrees
  ``q_i`` drawn from the target degree distribution and pairs connect with
  probability ``p = q_i q_j / (n q̄)``.
* 2K: degree-class block model with
  ``p(q1, q2) = (q̄/n) P(q1,q2) / (P(q1) P(q2))``, which reproduces the
  expected joint degree distribution.

As the paper observes, these constructions only reproduce the *expected*
distributions and suffer from high statistical variance (e.g. expected
degree-1 nodes frequently end up isolated); they are included both for
completeness and as the baseline the rewiring approaches are compared
against.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
)
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def _random_distinct_pairs(
    n_left: int,
    n_right: int,
    count: int,
    rng: np.random.Generator,
    *,
    same_class: bool,
    max_oversample: int = 4,
) -> set[tuple[int, int]]:
    """Sample ``count`` distinct index pairs between two classes of nodes.

    ``same_class`` indicates that both classes are the same node set, in which
    case pairs are unordered and the diagonal is excluded.
    """
    pairs: set[tuple[int, int]] = set()
    if count <= 0:
        return pairs
    attempts = 0
    budget = max_oversample * count + 100
    while len(pairs) < count and attempts < budget:
        attempts += 1
        i = int(rng.integers(n_left))
        j = int(rng.integers(n_right))
        if same_class:
            if i == j:
                continue
            pair = (i, j) if i < j else (j, i)
        else:
            pair = (i, j)
        pairs.add(pair)
    return pairs


def stochastic_0k(zero_k: AverageDegree, *, rng: RngLike = None) -> SimpleGraph:
    """Erdős–Rényi graph matching the expected average degree of ``zero_k``."""
    rng = ensure_rng(rng)
    n = zero_k.nodes
    graph = SimpleGraph(n)
    if n < 2:
        return graph
    p = zero_k.edge_probability()
    if p <= 0:
        return graph
    possible = n * (n - 1) // 2
    edge_target = int(rng.binomial(possible, p))
    for u, v in _random_distinct_pairs(n, n, edge_target, rng, same_class=True):
        graph.add_edge(u, v)
    return graph


def stochastic_1k(one_k: DegreeDistribution, *, rng: RngLike = None) -> SimpleGraph:
    """Chung–Lu graph with expected degrees drawn from ``one_k``.

    The expected-degree labels ``q_i`` are the exact degree sequence of the
    target distribution (the paper labels nodes with expected degrees drawn
    from ``P(k)``); connection probabilities are ``q_i q_j / (n q̄)`` capped
    at one.  The pair loop is vectorized row-by-row with numpy.
    """
    rng = ensure_rng(rng)
    degrees = np.array(one_k.degree_sequence(), dtype=float)
    n = len(degrees)
    graph = SimpleGraph(n)
    if n < 2:
        return graph
    total = degrees.sum()
    if total <= 0:
        return graph
    for i in range(n - 1):
        if degrees[i] == 0:
            continue
        others = degrees[i + 1:]
        probabilities = np.minimum(1.0, degrees[i] * others / total)
        draws = rng.random(len(others)) < probabilities
        for offset in np.nonzero(draws)[0]:
            graph.add_edge(i, i + 1 + int(offset))
    return graph


def stochastic_2k(jdd: JointDegreeDistribution, *, rng: RngLike = None) -> SimpleGraph:
    """Degree-class block model reproducing the expected JDD of ``jdd``.

    Nodes are grouped into degree classes of the sizes implied by the JDD;
    for every class pair the number of edges is drawn from the binomial
    distribution whose mean equals the target ``m(k1, k2)``, and the edges are
    placed on distinct uniformly random node pairs of those classes.
    """
    rng = ensure_rng(rng)
    node_counts = jdd.node_counts()
    # allocate node ids per degree class
    class_nodes: dict[int, list[int]] = {}
    next_id = 0
    for degree in sorted(node_counts):
        count = node_counts[degree]
        class_nodes[degree] = list(range(next_id, next_id + count))
        next_id += count
    graph = SimpleGraph(next_id + jdd.zero_degree_nodes)

    one_k = jdd.to_lower()
    n = one_k.nodes
    if n == 0:
        return graph
    pmf_1k = one_k.pmf()
    pmf_2k = jdd.pmf()
    qbar = one_k.average_degree()

    for (k1, k2), joint_probability in pmf_2k.items():
        nodes_1 = class_nodes.get(k1, [])
        nodes_2 = class_nodes.get(k2, [])
        if not nodes_1 or not nodes_2:
            continue
        p = (qbar / n) * joint_probability / (pmf_1k[k1] * pmf_1k[k2])
        p = min(1.0, p)
        if k1 == k2:
            possible = len(nodes_1) * (len(nodes_1) - 1) // 2
        else:
            possible = len(nodes_1) * len(nodes_2)
        if possible == 0 or p <= 0:
            continue
        edge_target = int(rng.binomial(possible, p))
        same = k1 == k2
        pairs = _random_distinct_pairs(
            len(nodes_1), len(nodes_2), edge_target, rng, same_class=same
        )
        for i, j in pairs:
            graph.add_edge(nodes_1[i], nodes_2[j])
    return graph


__all__ = ["stochastic_0k", "stochastic_1k", "stochastic_2k"]
