"""dK-targeting d'K-preserving rewiring (Metropolis dynamics, Section 4.1.4).

Starting from any d'K-graph, this rewiring process applies d'K-preserving
moves and accepts each move depending on how it changes the distance ``D_d``
to a *target* dK-distribution:

* ``ΔD_d < 0`` -- always accepted,
* ``ΔD_d = 0`` -- accepted (a free extra randomization step),
* ``ΔD_d > 0`` -- accepted with probability ``exp(-ΔD_d / T)``; the
  temperature ``T`` defaults to 0 (strict targeting), and an annealing
  schedule can be supplied for the ergodicity experiments described in the
  paper.

Two concrete processes are provided, matching the paper's construction
pipeline for dK-random graphs when no original graph is available:

* 2K-targeting 1K-preserving rewiring (target: a joint degree distribution),
* 3K-targeting 2K-preserving rewiring (target: wedge + triangle counts).

Like the randomizing chains, both processes run on either rewiring engine:
the per-move loops in this module (``backend="python"``) or the vectorized
batch engine in :mod:`repro.kernels.rewiring` (``backend="csr"``/``"auto"``).
The vectorized 3K-targeting chain keeps its objective as an incremental
sufficient statistic — a ``current - target`` diff over packed wedge and
triangle keys, updated per accepted move in O(deg) — so the Metropolis
distance change is an exact integer and the distance trace is identical for
every batch size.  A chain that stops short of its target emits a
:class:`~repro.exceptions.RewiringConvergenceWarning`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.distributions import JointDegreeDistribution, ThreeKDistribution
from repro.core.extraction import joint_degree_distribution
from repro.generators.matching import matching_1k, matching_2k
from repro.generators.rewiring.chain import warn_not_converged
from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    jdd_delta_of_swap,
    propose_1k_swap,
    propose_2k_swap,
)
from repro.generators.threek import ThreeKTracker
from repro.graph.simple_graph import SimpleGraph
from repro.kernels.backend import get_kernel, register_kernel, resolve_backend
from repro.telemetry import span
from repro.utils.rng import RngLike, ensure_rng

if TYPE_CHECKING:  # annotation-only; the python engine runs on the rng fallback
    import numpy as np

TemperatureSchedule = Callable[[int], float]


def constant_temperature(value: float) -> TemperatureSchedule:
    """A temperature schedule that always returns ``value``."""
    return lambda step: value


def geometric_cooling(start: float, ratio: float = 0.999) -> TemperatureSchedule:
    """Simulated-annealing style geometric cooling ``T(step) = start * ratio^step``."""
    if not 0 < ratio <= 1:
        raise ValueError("ratio must lie in (0, 1]")
    return lambda step: start * (ratio**step)


@dataclass
class TargetingResult:
    """Outcome of a targeting-rewiring run."""

    graph: SimpleGraph
    distance: float
    accepted_moves: int
    attempted_moves: int
    distance_trace: list[float]

    @property
    def converged(self) -> bool:
        """True when the target dK-distribution was reached exactly."""
        return self.distance == 0.0


def _metropolis_accept(delta: float, temperature: float, rng: np.random.Generator) -> bool:
    if delta < 0:
        return True
    if delta == 0:
        return True
    if temperature <= 0:
        return False
    return rng.random() < math.exp(-delta / temperature)


def _squared_distance(current: Counter, target: Counter) -> float:
    keys = set(current) | set(target)
    return float(sum((current.get(k, 0) - target.get(k, 0)) ** 2 for k in keys))


def _distance_change(current: Counter, target: Counter, delta: dict) -> float:
    change = 0.0
    for key, d in delta.items():
        if d == 0:
            continue
        c = current.get(key, 0)
        t = target.get(key, 0)
        change += (c + d - t) ** 2 - (c - t) ** 2
    return change


@register_kernel("rewire_target_2k", "python")
def _target_2k_python(
    graph: SimpleGraph,
    target: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    temperature: float | TemperatureSchedule = 0.0,
    trace_every: int = 1000,
    batch_size: int | None = None,
) -> TargetingResult:
    """Python-engine 2K-targeting chain (``batch_size`` is ignored)."""
    rng = ensure_rng(rng)
    result = graph.copy()
    schedule = temperature if callable(temperature) else constant_temperature(float(temperature))
    current = Counter(joint_degree_distribution(result).counts)
    target_counts = Counter(target.counts)
    degrees = result.degrees()
    distance = _squared_distance(current, target_counts)
    if max_attempts is None:
        max_attempts = 200 * max(result.number_of_edges, 1)

    accepted = 0
    attempts = 0
    trace = [distance]
    while distance > 0 and attempts < max_attempts:
        attempts += 1
        swap = propose_1k_swap(result, rng)
        if swap is None:
            continue
        jdd_delta = jdd_delta_of_swap(degrees, swap)
        change = _distance_change(current, target_counts, jdd_delta)
        if _metropolis_accept(change, schedule(attempts), rng):
            swap.apply(result)
            for key, value in jdd_delta.items():
                current[key] += value
                if current[key] == 0:
                    del current[key]
            distance += change
            accepted += 1
        if attempts % trace_every == 0:
            trace.append(distance)
    trace.append(distance)
    if distance > 0:
        warn_not_converged("2K-targeting", f"distance {distance:g} after {attempts} attempts")
    return TargetingResult(
        graph=result,
        distance=distance,
        accepted_moves=accepted,
        attempted_moves=attempts,
        distance_trace=trace,
    )


@register_kernel("rewire_target_3k", "python")
def _target_3k_python(
    graph: SimpleGraph,
    target: ThreeKDistribution,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    temperature: float | TemperatureSchedule = 0.0,
    trace_every: int = 1000,
    batch_size: int | None = None,
) -> TargetingResult:
    """Python-engine 3K-targeting chain (``batch_size`` is ignored)."""
    rng = ensure_rng(rng)
    result = graph.copy()
    schedule = temperature if callable(temperature) else constant_temperature(float(temperature))
    index = EdgeEndIndex(result)
    tracker = ThreeKTracker(result)
    target_wedges = Counter(target.wedges)
    target_triangles = Counter(target.triangles)
    distance = _squared_distance(tracker.wedges, target_wedges) + _squared_distance(
        tracker.triangles, target_triangles
    )
    if max_attempts is None:
        max_attempts = 400 * max(result.number_of_edges, 1)

    accepted = 0
    attempts = 0
    trace = [distance]
    while distance > 0 and attempts < max_attempts:
        attempts += 1
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        delta = tracker.apply_edges(result, list(swap.removals), list(swap.additions))
        change = _distance_change(tracker.wedges, target_wedges, delta.wedges)
        change += _distance_change(tracker.triangles, target_triangles, delta.triangles)
        if _metropolis_accept(change, schedule(attempts), rng):
            index.apply_swap(swap)
            tracker.commit(delta)
            distance += change
            accepted += 1
        else:
            tracker.revert_edges(result, list(swap.removals), list(swap.additions))
        if attempts % trace_every == 0:
            trace.append(distance)
    trace.append(distance)
    if distance > 0:
        warn_not_converged("3K-targeting", f"distance {distance:g} after {attempts} attempts")
    return TargetingResult(
        graph=result,
        distance=distance,
        accepted_moves=accepted,
        attempted_moves=attempts,
        distance_trace=trace,
    )


def target_2k_from_1k(
    graph: SimpleGraph,
    target: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    temperature: float | TemperatureSchedule = 0.0,
    trace_every: int = 1000,
    backend: str | None = None,
    batch_size: int | None = None,
) -> TargetingResult:
    """2K-targeting 1K-preserving rewiring of (a copy of) ``graph``.

    The degree sequence of ``graph`` is preserved throughout; the joint
    degree distribution is pushed toward ``target`` by accepting double edge
    swaps that decrease ``D_2``.  ``backend`` selects the rewiring engine.
    """
    concrete = resolve_backend(graph, backend)
    kernel = get_kernel("rewire_target_2k", concrete)
    with span(
        "kernel.rewire_target_2k",
        backend=concrete,
        n=graph.number_of_nodes,
        m=graph.number_of_edges,
    ):
        return kernel(
            graph,
            target,
            rng=rng,
            max_attempts=max_attempts,
            temperature=temperature,
            trace_every=trace_every,
            batch_size=batch_size,
        )


def target_3k_from_2k(
    graph: SimpleGraph,
    target: ThreeKDistribution,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    temperature: float | TemperatureSchedule = 0.0,
    trace_every: int = 1000,
    backend: str | None = None,
    batch_size: int | None = None,
) -> TargetingResult:
    """3K-targeting 2K-preserving rewiring of (a copy of) ``graph``.

    The joint degree distribution of ``graph`` is preserved throughout; the
    wedge and triangle distributions are pushed toward ``target``.
    ``backend`` selects the rewiring engine.
    """
    concrete = resolve_backend(graph, backend)
    kernel = get_kernel("rewire_target_3k", concrete)
    with span(
        "kernel.rewire_target_3k",
        backend=concrete,
        n=graph.number_of_nodes,
        m=graph.number_of_edges,
    ):
        return kernel(
            graph,
            target,
            rng=rng,
            max_attempts=max_attempts,
            temperature=temperature,
            trace_every=trace_every,
            batch_size=batch_size,
        )


def dk_targeting_result(
    target,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    backend: str | None = None,
) -> tuple[SimpleGraph, dict]:
    """Run the targeting bootstrap pipeline and return ``(graph, stats)``.

    This is the paper's construction for ``d >= 2`` when no original graph is
    available:

    * for a :class:`JointDegreeDistribution` target: build a 1K graph from the
      projected degree distribution with the matching algorithm, then apply
      2K-targeting 1K-preserving rewiring;
    * for a :class:`ThreeKDistribution` target: first build a 2K graph for the
      embedded JDD with the matching algorithm, then apply 3K-targeting
      2K-preserving rewiring.

    The ``stats`` dict records the Metropolis chain's outcome: the final
    distance to the target distribution, accepted/attempted move counts, and
    whether the target was reached exactly (``converged``).
    """
    rng = ensure_rng(rng)
    if isinstance(target, JointDegreeDistribution):
        seed_graph = matching_1k(target.to_lower(), rng=rng)
        run = target_2k_from_1k(
            seed_graph, target, rng=rng, max_attempts=max_attempts, backend=backend
        )
    elif isinstance(target, ThreeKDistribution):
        seed_graph = matching_2k(target.jdd, rng=rng)
        run = target_3k_from_2k(
            seed_graph, target, rng=rng, max_attempts=max_attempts, backend=backend
        )
    else:
        raise TypeError(
            "dk_targeting_result expects a JointDegreeDistribution or ThreeKDistribution, "
            f"got {type(target).__name__}"
        )
    stats = {
        "distance": float(run.distance),
        "accepted_moves": run.accepted_moves,
        "attempted_moves": run.attempted_moves,
        "converged": run.converged,
    }
    return run.graph, stats


def dk_targeting_construct(
    target,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
    backend: str | None = None,
) -> SimpleGraph:
    """Construct a dK-random graph from a dK-distribution alone.

    Graph-returning convenience wrapper around :func:`dk_targeting_result`.
    """
    return dk_targeting_result(target, rng=rng, max_attempts=max_attempts, backend=backend)[0]


__all__ = [
    "TargetingResult",
    "TemperatureSchedule",
    "constant_temperature",
    "geometric_cooling",
    "target_2k_from_1k",
    "target_3k_from_2k",
    "dk_targeting_result",
    "dk_targeting_construct",
]
