"""Elementary rewiring moves (edge swaps) and their sampling machinery.

The paper's rewiring algorithms are built from two elementary moves:

* a *0K move* re-attaches one random edge to a random non-adjacent node pair
  (preserves only the number of edges / average degree);
* a *double edge swap* replaces edges ``(a,b), (c,d)`` with ``(a,d), (c,b)``
  (always preserves every node degree, hence the 1K-distribution).

A double edge swap additionally preserves the joint degree distribution when
the two exchanged endpoints have equal degrees; :class:`EdgeEndIndex` keeps a
degree-indexed table of oriented edge ends so that such 2K-preserving swaps
can be proposed in O(1) instead of by rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.graph.simple_graph import SimpleGraph, canonical_edge

if TYPE_CHECKING:  # NumPy is annotation-only here: the pure-Python proposal
    import numpy as np  # machinery also runs on the rng fallback generator


@dataclass(frozen=True)
class Swap:
    """A rewiring move: remove ``removals`` then add ``additions``."""

    removals: tuple[tuple[int, int], ...]
    additions: tuple[tuple[int, int], ...]

    def apply(self, graph: SimpleGraph) -> None:
        """Apply the move to ``graph`` (assumes it has been validated)."""
        for u, v in self.removals:
            graph.remove_edge(u, v)
        for u, v in self.additions:
            graph.add_edge(u, v)

    def revert(self, graph: SimpleGraph) -> None:
        """Undo a previously applied move."""
        for u, v in self.additions:
            graph.remove_edge(u, v)
        for u, v in self.removals:
            graph.add_edge(u, v)


def double_swap_is_valid(graph: SimpleGraph, a: int, b: int, c: int, d: int) -> bool:
    """Validity of replacing ``(a,b), (c,d)`` by ``(a,d), (c,b)``.

    The move must not create self-loops or parallel edges and must actually
    change the graph.
    """
    if a == d or c == b:
        return False
    if canonical_edge(a, b) == canonical_edge(c, d):
        return False
    if graph.has_edge(a, d) or graph.has_edge(c, b):
        return False
    return True


def make_double_swap(a: int, b: int, c: int, d: int) -> Swap:
    """Build the double-edge-swap move ``(a,b),(c,d) -> (a,d),(c,b)``."""
    return Swap(
        removals=(canonical_edge(a, b), canonical_edge(c, d)),
        additions=(canonical_edge(a, d), canonical_edge(c, b)),
    )


def propose_0k_move(graph: SimpleGraph, rng: np.random.Generator) -> Swap | None:
    """Propose a 0K-preserving move: re-attach a random edge elsewhere."""
    m = graph.number_of_edges
    n = graph.number_of_nodes
    if m == 0 or n < 2:
        return None
    u, v = graph.edge_at(int(rng.integers(m)))
    x = int(rng.integers(n))
    y = int(rng.integers(n))
    if x == y or graph.has_edge(x, y):
        return None
    # re-adding the removed edge itself would be a no-op, which is fine to skip
    if canonical_edge(x, y) == canonical_edge(u, v):
        return None
    return Swap(removals=(canonical_edge(u, v),), additions=(canonical_edge(x, y),))


def propose_1k_swap(graph: SimpleGraph, rng: np.random.Generator) -> Swap | None:
    """Propose a degree-preserving (1K) double edge swap."""
    m = graph.number_of_edges
    if m < 2:
        return None
    a, b = graph.edge_at(int(rng.integers(m)))
    c, d = graph.edge_at(int(rng.integers(m)))
    if rng.random() < 0.5:
        c, d = d, c
    if not double_swap_is_valid(graph, a, b, c, d):
        return None
    return make_double_swap(a, b, c, d)


class EdgeEndIndex:
    """Degree-indexed table of oriented edge ends.

    For every degree ``k`` the index stores the list of oriented edges
    ``(u, v)`` whose *second* endpoint has degree ``k`` (degrees are frozen at
    construction time, which is valid for degree-preserving rewiring).  The
    list + position-dictionary layout supports O(1) membership updates and
    O(1) uniform sampling.
    """

    def __init__(self, graph: SimpleGraph):
        self.degrees = graph.degrees()
        self._by_degree: dict[int, list[tuple[int, int]]] = {}
        self._positions: dict[tuple[int, int], int] = {}
        for u, v in graph.edges():
            self._insert((u, v))
            self._insert((v, u))

    def _insert(self, oriented: tuple[int, int]) -> None:
        degree = self.degrees[oriented[1]]
        bucket = self._by_degree.setdefault(degree, [])
        self._positions[oriented] = len(bucket)
        bucket.append(oriented)

    def _discard(self, oriented: tuple[int, int]) -> None:
        degree = self.degrees[oriented[1]]
        bucket = self._by_degree[degree]
        position = self._positions.pop(oriented)
        last = bucket[-1]
        bucket[position] = last
        self._positions[last] = position
        bucket.pop()

    def add_edge(self, u: int, v: int) -> None:
        """Register a newly added edge."""
        self._insert((u, v))
        self._insert((v, u))

    def remove_edge(self, u: int, v: int) -> None:
        """Unregister a removed edge."""
        self._discard((u, v))
        self._discard((v, u))

    def apply_swap(self, swap: Swap) -> None:
        """Update the index to reflect an applied swap."""
        for u, v in swap.removals:
            self.remove_edge(u, v)
        for u, v in swap.additions:
            self.add_edge(u, v)

    def revert_swap(self, swap: Swap) -> None:
        """Update the index to reflect a reverted swap."""
        for u, v in swap.additions:
            self.remove_edge(u, v)
        for u, v in swap.removals:
            self.add_edge(u, v)

    def random_end_with_degree(self, degree: int, rng: np.random.Generator) -> tuple[int, int] | None:
        """A uniformly random oriented edge whose head has the given degree."""
        bucket = self._by_degree.get(degree)
        if not bucket:
            return None
        return bucket[int(rng.integers(len(bucket)))]

    def degree_buckets(self) -> dict[int, list[tuple[int, int]]]:
        """The live ``head degree -> oriented (tail, head) edges`` table.

        This is the degree-bucketed oriented edge-end index the rewiring
        engines propose 2K moves from; :mod:`repro.generators.rewiring.counting`
        reuses it to enumerate only degree-compatible swap candidates.  The
        returned buckets are the index's own lists — treat them as read-only.
        """
        return self._by_degree


def propose_2k_swap(
    graph: SimpleGraph, index: EdgeEndIndex, rng: np.random.Generator
) -> Swap | None:
    """Propose a JDD-preserving double edge swap.

    A random oriented edge ``(a, b)`` is drawn, then a second oriented edge
    ``(c, d)`` whose head ``d`` has the same degree as ``b``; swapping the two
    heads leaves ``P(k, k')`` unchanged.
    """
    m = graph.number_of_edges
    if m < 2:
        return None
    a, b = graph.edge_at(int(rng.integers(m)))
    if rng.random() < 0.5:
        a, b = b, a
    other = index.random_end_with_degree(index.degrees[b], rng)
    if other is None:
        return None
    c, d = other
    if not double_swap_is_valid(graph, a, b, c, d):
        return None
    return make_double_swap(a, b, c, d)


def jdd_delta_of_double_swap(degrees: list[int], a: int, b: int, c: int, d: int) -> dict[tuple[int, int], int]:
    """Change of JDD edge counts caused by ``(a,b),(c,d) -> (a,d),(c,b)``."""
    swap = make_double_swap(a, b, c, d)
    return jdd_delta_of_swap(degrees, swap)


def jdd_delta_of_swap(degrees: list[int], swap: Swap) -> dict[tuple[int, int], int]:
    """Change of JDD edge counts caused by an arbitrary degree-preserving swap."""
    delta: dict[tuple[int, int], int] = {}

    def bump(u: int, v: int, amount: int) -> None:
        ku, kv = degrees[u], degrees[v]
        key = (ku, kv) if ku <= kv else (kv, ku)
        delta[key] = delta.get(key, 0) + amount
        if delta[key] == 0:
            del delta[key]

    for u, v in swap.removals:
        bump(u, v, -1)
    for u, v in swap.additions:
        bump(u, v, +1)
    return delta


__all__ = [
    "Swap",
    "EdgeEndIndex",
    "double_swap_is_valid",
    "make_double_swap",
    "propose_0k_move",
    "propose_1k_swap",
    "propose_2k_swap",
    "jdd_delta_of_double_swap",
    "jdd_delta_of_swap",
]
