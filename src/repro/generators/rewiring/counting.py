"""Counting possible initial dK-preserving rewirings (Table 5 of the paper).

The number of dK-preserving rewirings applicable to a given graph is a
useful preliminary indicator of the size of the dK-graph space: it collapses
by orders of magnitude as ``d`` grows.  The paper also discards rewirings
that obviously lead to isomorphic graphs (exchanging two degree-1 leaves).

Conventions (documented because the paper does not spell out its own):

* ``d = 0``: one move = (an existing edge, a currently non-adjacent node
  pair to re-attach it to); the count is ``m * (C(n,2) - m)``.
* ``d >= 1``: one move = an unordered pair of distinct edges together with
  one of the two possible endpoint pairings, valid when it creates neither
  self-loops nor parallel edges; for ``d = 2`` the pairing must additionally
  preserve the joint degree distribution, for ``d = 3`` also the wedge and
  triangle distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.extraction import joint_degree_distribution  # noqa: F401  (re-exported for callers)
from repro.generators.rewiring.swaps import (
    double_swap_is_valid,
    jdd_delta_of_double_swap,
    make_double_swap,
)
from repro.generators.threek import ThreeKTracker
from repro.graph.simple_graph import SimpleGraph


@dataclass(frozen=True)
class RewiringCounts:
    """Number of possible initial dK-preserving rewirings."""

    total: int
    non_isomorphic: int


def count_0k_rewirings(graph: SimpleGraph) -> int:
    """``m * (C(n,2) - m)``: each edge can move to any non-adjacent pair."""
    n = graph.number_of_nodes
    m = graph.number_of_edges
    return m * (n * (n - 1) // 2 - m)


def _is_obviously_isomorphic(degrees: list[int], a: int, b: int, c: int, d: int) -> bool:
    """The paper's example of an isomorphism-preserving swap.

    Replacing ``(a,b), (c,d)`` by ``(a,d), (c,b)`` exchanges the endpoints
    ``b`` and ``d`` (equivalently ``a`` and ``c``).  When both exchanged
    endpoints are degree-1 leaves, the resulting graph is trivially isomorphic
    to the original one.
    """
    return (degrees[b] == 1 and degrees[d] == 1) or (degrees[a] == 1 and degrees[c] == 1)


def count_dk_rewirings(graph: SimpleGraph, d: int) -> RewiringCounts:
    """Count the possible initial dK-preserving rewirings for ``d`` in 0..3.

    For ``d = 0`` a closed-form formula is used and the isomorphism filter is
    not applicable (the paper reports "-"); the ``non_isomorphic`` field then
    equals the total.  For ``d >= 1`` all pairs of edges are enumerated, which
    is O(m²) and intended for moderately sized graphs such as the HOT
    topology the paper reports.
    """
    if d == 0:
        total = count_0k_rewirings(graph)
        return RewiringCounts(total=total, non_isomorphic=total)
    if d not in (1, 2, 3):
        raise ValueError(f"d must be in 0..3, got {d}")

    degrees = graph.degrees()
    edges = graph.edge_list()
    tracker = ThreeKTracker(graph) if d == 3 else None
    working = graph if d < 3 else graph.copy()

    total = 0
    non_isomorphic = 0
    m = len(edges)
    for i in range(m):
        a, b = edges[i]
        for j in range(i + 1, m):
            c, d_node = edges[j]
            # the two possible endpoint pairings of the edge pair
            for (x1, y1, x2, y2) in ((a, b, c, d_node), (a, b, d_node, c)):
                if not double_swap_is_valid(working, x1, y1, x2, y2):
                    continue
                if d >= 2:
                    jdd_delta = jdd_delta_of_double_swap(degrees, x1, y1, x2, y2)
                    if jdd_delta:
                        continue
                if d == 3:
                    swap = make_double_swap(x1, y1, x2, y2)
                    delta = tracker.apply_edges(
                        working, list(swap.removals), list(swap.additions)
                    )
                    zero = delta.is_zero()
                    tracker.revert_edges(working, list(swap.removals), list(swap.additions))
                    if not zero:
                        continue
                total += 1
                if not _is_obviously_isomorphic(degrees, x1, y1, x2, y2):
                    non_isomorphic += 1
    return RewiringCounts(total=total, non_isomorphic=non_isomorphic)


def rewiring_count_table(graph: SimpleGraph, ds: tuple[int, ...] = (0, 1, 2, 3)) -> dict[int, RewiringCounts]:
    """Compute the full Table-5-style count table for the requested levels."""
    return {d: count_dk_rewirings(graph, d) for d in ds}


__all__ = ["RewiringCounts", "count_0k_rewirings", "count_dk_rewirings", "rewiring_count_table"]
