"""Counting possible initial dK-preserving rewirings (Table 5 of the paper).

The number of dK-preserving rewirings applicable to a given graph is a
useful preliminary indicator of the size of the dK-graph space: it collapses
by orders of magnitude as ``d`` grows.  The paper also discards rewirings
that obviously lead to isomorphic graphs (exchanging two degree-1 leaves).

Conventions (documented because the paper does not spell out its own):

* ``d = 0``: one move = (an existing edge, a currently non-adjacent node
  pair to re-attach it to); the count is ``m * (C(n,2) - m)``.
* ``d >= 1``: one move = an unordered pair of distinct edges together with
  one of the two possible endpoint pairings, valid when it creates neither
  self-loops nor parallel edges; for ``d = 2`` the pairing must additionally
  preserve the joint degree distribution, for ``d = 3`` also the wedge and
  triangle distributions.

For ``d >= 2`` the candidates are enumerated through the same
degree-bucketed oriented edge-end index the rewiring engines propose 2K
moves from (:meth:`EdgeEndIndex.degree_buckets`): a pairing changes the JDD
unless the exchanged heads — or equivalently the retained tails — carry
equal degrees, so only end pairs inside one degree bucket can qualify.  That
replaces the all-pairs ``O(m²)`` sweep with ``O(Σ_k B_k²)`` over the bucket
sizes ``B_k``, which collapses on graphs with diverse degrees.  ``d = 1``
keeps the pair enumeration: there every edge pair is a genuine candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.extraction import joint_degree_distribution  # noqa: F401  (re-exported for callers)
from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    double_swap_is_valid,
    jdd_delta_of_double_swap,
    make_double_swap,
)
from repro.generators.threek import ThreeKTracker
from repro.graph.simple_graph import SimpleGraph, canonical_edge


@dataclass(frozen=True)
class RewiringCounts:
    """Number of possible initial dK-preserving rewirings."""

    total: int
    non_isomorphic: int


def count_0k_rewirings(graph: SimpleGraph) -> int:
    """``m * (C(n,2) - m)``: each edge can move to any non-adjacent pair."""
    n = graph.number_of_nodes
    m = graph.number_of_edges
    return m * (n * (n - 1) // 2 - m)


def _is_obviously_isomorphic(degrees: list[int], a: int, b: int, c: int, d: int) -> bool:
    """The paper's example of an isomorphism-preserving swap.

    Replacing ``(a,b), (c,d)`` by ``(a,d), (c,b)`` exchanges the endpoints
    ``b`` and ``d`` (equivalently ``a`` and ``c``).  When both exchanged
    endpoints are degree-1 leaves, the resulting graph is trivially isomorphic
    to the original one.
    """
    return (degrees[b] == 1 and degrees[d] == 1) or (degrees[a] == 1 and degrees[c] == 1)


def _count_by_pair_enumeration(graph: SimpleGraph, d: int) -> RewiringCounts:
    """All-pairs reference enumeration (O(m²) pairings), valid for d in 1..3."""
    degrees = graph.degrees()
    edges = graph.edge_list()
    tracker = ThreeKTracker(graph) if d == 3 else None
    working = graph if d < 3 else graph.copy()

    total = 0
    non_isomorphic = 0
    m = len(edges)
    for i in range(m):
        a, b = edges[i]
        for j in range(i + 1, m):
            c, d_node = edges[j]
            # the two possible endpoint pairings of the edge pair
            for (x1, y1, x2, y2) in ((a, b, c, d_node), (a, b, d_node, c)):
                if not double_swap_is_valid(working, x1, y1, x2, y2):
                    continue
                if d >= 2:
                    jdd_delta = jdd_delta_of_double_swap(degrees, x1, y1, x2, y2)
                    if jdd_delta:
                        continue
                if d == 3:
                    swap = make_double_swap(x1, y1, x2, y2)
                    delta = tracker.apply_edges(
                        working, list(swap.removals), list(swap.additions)
                    )
                    zero = delta.is_zero()
                    tracker.revert_edges(working, list(swap.removals), list(swap.additions))
                    if not zero:
                        continue
                total += 1
                if not _is_obviously_isomorphic(degrees, x1, y1, x2, y2):
                    non_isomorphic += 1
    return RewiringCounts(total=total, non_isomorphic=non_isomorphic)


def _count_by_degree_buckets(graph: SimpleGraph, d: int) -> RewiringCounts:
    """Degree-bucketed enumeration of the JDD-preserving pairings (d in 2..3).

    A pairing ``(a,b),(c,d) -> (a,d),(c,b)`` leaves the JDD unchanged iff
    ``deg(b) == deg(d)`` or ``deg(a) == deg(c)``, i.e. iff at least one of
    its two oriented representations — ``(a→b, c→d)`` exchanging the heads
    ``b, d``, or the reversed ``(b→a, d→c)`` exchanging ``a, c`` — pairs two
    edge ends from the *same* degree bucket.  Enumerating unordered end
    pairs inside each bucket therefore visits every JDD-preserving pairing
    once per qualifying representation; pairings whose both representations
    qualify (``deg(a) == deg(c)`` *and* ``deg(b) == deg(d)``) are visited
    twice, which the half-unit accounting divides back out.
    """
    index = EdgeEndIndex(graph)
    degrees = index.degrees
    tracker = ThreeKTracker(graph) if d == 3 else None
    working = graph if d < 3 else graph.copy()

    total_half_units = 0
    non_isomorphic_half_units = 0
    for bucket in index.degree_buckets().values():
        size = len(bucket)
        for i in range(size):
            a, b = bucket[i]
            edge_ab = canonical_edge(a, b)
            for j in range(i + 1, size):
                c, d_node = bucket[j]
                if canonical_edge(c, d_node) == edge_ab:
                    continue  # the two orientations of one edge
                if not double_swap_is_valid(working, a, b, c, d_node):
                    continue
                if d == 3:
                    swap = make_double_swap(a, b, c, d_node)
                    delta = tracker.apply_edges(
                        working, list(swap.removals), list(swap.additions)
                    )
                    zero = delta.is_zero()
                    tracker.revert_edges(working, list(swap.removals), list(swap.additions))
                    if not zero:
                        continue
                # 2 half-units when this bucket holds the pairing's only
                # qualifying representation, 1 when the reversed one (in the
                # tail-degree bucket) is enumerated as well
                weight = 1 if degrees[a] == degrees[c] else 2
                total_half_units += weight
                if not _is_obviously_isomorphic(degrees, a, b, c, d_node):
                    non_isomorphic_half_units += weight
    return RewiringCounts(
        total=total_half_units // 2,
        non_isomorphic=non_isomorphic_half_units // 2,
    )


def _bucket_sweep_is_cheaper(graph: SimpleGraph) -> bool:
    """Whether the degree-bucketed sweep beats the all-pairs enumeration.

    The bucket sweep visits ~``Σ_k B_k² / 2`` end pairs (``B_k = k·n_k``
    oriented ends carry head degree ``k``), the pair enumeration ``~m²``
    pairings.  On (near-)regular graphs every end lands in one bucket and
    the sweep would do ~4x the work, so fall back to the pair walk there.
    """
    m = graph.number_of_edges
    end_pairs = sum((k * count) ** 2 for k, count in graph.degree_histogram().items())
    return end_pairs < 2 * m * m


def count_dk_rewirings(graph: SimpleGraph, d: int) -> RewiringCounts:
    """Count the possible initial dK-preserving rewirings for ``d`` in 0..3.

    For ``d = 0`` a closed-form formula is used and the isomorphism filter is
    not applicable (the paper reports "-"); the ``non_isomorphic`` field then
    equals the total.  ``d = 1`` enumerates all edge pairs (each is a
    candidate), while ``d >= 2`` walks only the degree-compatible end pairs
    of the rewiring engines' bucketed edge-end index — unless the graph's
    degrees are so uniform that the buckets degenerate, where the pair
    enumeration is kept (both paths count identically).
    """
    if d == 0:
        total = count_0k_rewirings(graph)
        return RewiringCounts(total=total, non_isomorphic=total)
    if d not in (1, 2, 3):
        raise ValueError(f"d must be in 0..3, got {d}")
    if d == 1 or not _bucket_sweep_is_cheaper(graph):
        return _count_by_pair_enumeration(graph, d)
    return _count_by_degree_buckets(graph, d)


def rewiring_count_table(graph: SimpleGraph, ds: tuple[int, ...] = (0, 1, 2, 3)) -> dict[int, RewiringCounts]:
    """Compute the full Table-5-style count table for the requested levels."""
    return {d: count_dk_rewirings(graph, d) for d in ds}


__all__ = ["RewiringCounts", "count_0k_rewirings", "count_dk_rewirings", "rewiring_count_table"]
