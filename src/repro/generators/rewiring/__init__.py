"""Rewiring-based dK-graph construction: preserving, targeting, counting.

Exports are lazy (PEP 562) so the pure-Python rewiring engine is importable
on a bare interpreter; the targeting chains additionally need NumPy for
their matching-based bootstrap.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "RewiringCounts": "repro.generators.rewiring.counting",
    "count_dk_rewirings": "repro.generators.rewiring.counting",
    "rewiring_count_table": "repro.generators.rewiring.counting",
    "dk_randomize": "repro.generators.rewiring.preserving",
    "randomize_0k": "repro.generators.rewiring.preserving",
    "randomize_1k": "repro.generators.rewiring.preserving",
    "randomize_2k": "repro.generators.rewiring.preserving",
    "randomize_3k": "repro.generators.rewiring.preserving",
    "verify_randomization_converged": "repro.generators.rewiring.preserving",
    "EdgeEndIndex": "repro.generators.rewiring.swaps",
    "Swap": "repro.generators.rewiring.swaps",
    "double_swap_is_valid": "repro.generators.rewiring.swaps",
    "jdd_delta_of_double_swap": "repro.generators.rewiring.swaps",
    "jdd_delta_of_swap": "repro.generators.rewiring.swaps",
    "make_double_swap": "repro.generators.rewiring.swaps",
    "propose_0k_move": "repro.generators.rewiring.swaps",
    "propose_1k_swap": "repro.generators.rewiring.swaps",
    "propose_2k_swap": "repro.generators.rewiring.swaps",
    "record_chain_stats": "repro.generators.rewiring.chain",
    "warn_not_converged": "repro.generators.rewiring.chain",
    "TargetingResult": "repro.generators.rewiring.targeting",
    "constant_temperature": "repro.generators.rewiring.targeting",
    "geometric_cooling": "repro.generators.rewiring.targeting",
    "dk_targeting_construct": "repro.generators.rewiring.targeting",
    "dk_targeting_result": "repro.generators.rewiring.targeting",
    "target_2k_from_1k": "repro.generators.rewiring.targeting",
    "target_3k_from_2k": "repro.generators.rewiring.targeting",
}

#: Submodules reachable as attributes, as the eager imports used to bind.
_SUBMODULES = ("chain", "counting", "preserving", "swaps", "targeting")

__all__ = [*_SUBMODULES, *_EXPORTS]

_lazy_getattr, __dir__ = lazy_exports(__name__, _EXPORTS)


def __getattr__(name: str):
    if name in _SUBMODULES:
        # importing the submodule binds it on this package as a side effect
        import importlib

        return importlib.import_module(f"repro.generators.rewiring.{name}")
    return _lazy_getattr(name)
