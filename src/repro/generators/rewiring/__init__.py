"""Rewiring-based dK-graph construction: preserving, targeting, counting."""

from repro.generators.rewiring.counting import (
    RewiringCounts,
    count_dk_rewirings,
    rewiring_count_table,
)
from repro.generators.rewiring.preserving import (
    dk_randomize,
    randomize_0k,
    randomize_1k,
    randomize_2k,
    randomize_3k,
    verify_randomization_converged,
)
from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    Swap,
    double_swap_is_valid,
    jdd_delta_of_double_swap,
    jdd_delta_of_swap,
    make_double_swap,
    propose_0k_move,
    propose_1k_swap,
    propose_2k_swap,
)
from repro.generators.rewiring.targeting import (
    TargetingResult,
    constant_temperature,
    dk_targeting_construct,
    geometric_cooling,
    target_2k_from_1k,
    target_3k_from_2k,
)

__all__ = [
    "RewiringCounts",
    "count_dk_rewirings",
    "rewiring_count_table",
    "dk_randomize",
    "randomize_0k",
    "randomize_1k",
    "randomize_2k",
    "randomize_3k",
    "verify_randomization_converged",
    "EdgeEndIndex",
    "Swap",
    "double_swap_is_valid",
    "jdd_delta_of_double_swap",
    "jdd_delta_of_swap",
    "make_double_swap",
    "propose_0k_move",
    "propose_1k_swap",
    "propose_2k_swap",
    "TargetingResult",
    "constant_temperature",
    "geometric_cooling",
    "dk_targeting_construct",
    "target_2k_from_1k",
    "target_3k_from_2k",
]
