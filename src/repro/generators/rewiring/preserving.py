"""dK-preserving randomizing rewiring (Section 4.1.4 of the paper).

``dk_randomize(graph, d)`` produces a dK-random counterpart of ``graph`` by
performing a large number of random dK-preserving moves:

* d = 0: re-attach random edges to random non-adjacent node pairs,
* d = 1: degree-preserving double edge swaps,
* d = 2: double edge swaps whose exchanged endpoints have equal degrees
  (joint-degree-distribution preserving),
* d = 3: 2K-preserving swaps accepted only when the wedge and triangle
  distributions are left exactly unchanged.

The number of *accepted* moves defaults to ``multiplier * m`` (the Markov
chain of [Gkantsidis et al. 2003] mixes in O(m) steps; the paper performs ten
times its count of possible initial rewirings, which is of the same order).
A global attempt budget guards against the very restricted 3K case in which
acceptable moves may be rare.
"""

from __future__ import annotations

from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    propose_0k_move,
    propose_1k_swap,
    propose_2k_swap,
)
from repro.generators.threek import ThreeKTracker
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def _target_moves(graph: SimpleGraph, multiplier: float) -> int:
    return max(1, int(multiplier * graph.number_of_edges))


def _record_stats(
    stats: dict | None, *, target: int, accepted: int, attempted: int
) -> None:
    """Fill the caller-supplied ``stats`` dict with the chain's outcome."""
    if stats is None:
        return
    stats["target_moves"] = target
    stats["accepted_moves"] = accepted
    stats["attempted_moves"] = attempted
    stats["converged"] = accepted >= target


def randomize_0k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """0K-preserving randomization of a copy of ``graph``."""
    rng = ensure_rng(rng)
    result = graph.copy()
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        move = propose_0k_move(result, rng)
        if move is None:
            continue
        move.apply(result)
        accepted += 1
    _record_stats(stats, target=target, accepted=accepted, attempted=attempted)
    return result


def randomize_1k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """1K-preserving (degree-preserving) randomization of a copy of ``graph``."""
    rng = ensure_rng(rng)
    result = graph.copy()
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_1k_swap(result, rng)
        if swap is None:
            continue
        swap.apply(result)
        accepted += 1
    _record_stats(stats, target=target, accepted=accepted, attempted=attempted)
    return result


def randomize_2k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """2K-preserving (JDD-preserving) randomization of a copy of ``graph``."""
    rng = ensure_rng(rng)
    result = graph.copy()
    index = EdgeEndIndex(result)
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        swap.apply(result)
        index.apply_swap(swap)
        accepted += 1
    _record_stats(stats, target=target, accepted=accepted, attempted=attempted)
    return result


def randomize_3k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 200,
    stats: dict | None = None,
) -> SimpleGraph:
    """3K-preserving randomization of a copy of ``graph``.

    Proposals are 2K-preserving swaps; a proposal is accepted only if the
    wedge and triangle distributions are left exactly unchanged.  Because the
    3K space is typically very constrained (cf. Table 5 of the paper), the
    attempt budget is the binding limit rather than the accepted-move target.
    """
    rng = ensure_rng(rng)
    result = graph.copy()
    index = EdgeEndIndex(result)
    tracker = ThreeKTracker(result)
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * max(result.number_of_edges, 1)
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        delta = tracker.apply_edges(result, list(swap.removals), list(swap.additions))
        if delta.is_zero():
            index.apply_swap(swap)
            tracker.commit(delta)
            accepted += 1
        else:
            tracker.revert_edges(result, list(swap.removals), list(swap.additions))
    _record_stats(stats, target=target, accepted=accepted, attempted=attempted)
    return result


def dk_randomize(
    graph: SimpleGraph,
    d: int,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    stats: dict | None = None,
) -> SimpleGraph:
    """Dispatch to the dK-preserving randomizer for ``d`` in ``{0, 1, 2, 3}``.

    When a ``stats`` dict is supplied, the chain's accepted/attempted move
    counts and convergence flag are recorded into it.
    """
    if d == 0:
        return randomize_0k(graph, rng=rng, multiplier=multiplier, stats=stats)
    if d == 1:
        return randomize_1k(graph, rng=rng, multiplier=multiplier, stats=stats)
    if d == 2:
        return randomize_2k(graph, rng=rng, multiplier=multiplier, stats=stats)
    if d == 3:
        return randomize_3k(graph, rng=rng, multiplier=multiplier, stats=stats)
    raise ValueError(f"dK-randomizing rewiring is implemented for d in 0..3, got {d}")


def verify_randomization_converged(
    graph: SimpleGraph,
    d: int,
    metric,
    *,
    rng: RngLike = None,
    extra_multiplier: float = 5.0,
    relative_tolerance: float = 0.1,
) -> bool:
    """Convergence check advocated by the paper: rewire some more and see
    whether a chosen scalar ``metric(graph)`` stays (approximately) unchanged.

    Parameters
    ----------
    graph:
        An already-randomized dK-graph.
    d:
        The dK level that must be preserved by the extra rewirings.
    metric:
        Callable mapping a graph to a float.
    extra_multiplier:
        How many extra accepted moves (in units of ``m``) to apply.
    relative_tolerance:
        Maximum allowed relative change of the metric.
    """
    before = float(metric(graph))
    extra = dk_randomize(graph, d, rng=rng, multiplier=extra_multiplier)
    after = float(metric(extra))
    scale = max(abs(before), abs(after), 1e-12)
    return abs(after - before) / scale <= relative_tolerance


__all__ = [
    "randomize_0k",
    "randomize_1k",
    "randomize_2k",
    "randomize_3k",
    "dk_randomize",
    "verify_randomization_converged",
]
