"""dK-preserving randomizing rewiring (Section 4.1.4 of the paper).

``dk_randomize(graph, d)`` produces a dK-random counterpart of ``graph`` by
performing a large number of random dK-preserving moves:

* d = 0: re-attach random edges to random non-adjacent node pairs,
* d = 1: degree-preserving double edge swaps,
* d = 2: double edge swaps whose exchanged endpoints have equal degrees
  (joint-degree-distribution preserving),
* d = 3: 2K-preserving swaps accepted only when the wedge and triangle
  distributions are left exactly unchanged.

The number of *accepted* moves defaults to ``multiplier * m`` (the Markov
chain of [Gkantsidis et al. 2003] mixes in O(m) steps; the paper performs ten
times its count of possible initial rewirings, which is of the same order).
A global attempt budget guards against the very restricted 3K case in which
acceptable moves may be rare; a chain that exhausts it emits a
:class:`~repro.exceptions.RewiringConvergenceWarning`.

Two interchangeable engines run the chains (see
:mod:`repro.kernels.backend`): ``backend="python"`` is the per-move loop over
:class:`~repro.graph.simple_graph.SimpleGraph` in this module — the reference
implementation, which also runs without NumPy — while ``backend="csr"`` (or
``"auto"`` on large graphs) dispatches to the vectorized batch engine in
:mod:`repro.kernels.rewiring`.  Both engines are deterministic per seed and
preserve the dK-invariants exactly; they draw different random streams, so
they sample different members of the same dK-graph space.

For d = 3 the vectorized engine evaluates the wedge/triangle acceptance
test batched across each proposal block (CSR rows + adjacency bitset,
packed-key reductions) instead of walking adjacency sets per move; accepted
moves update the neighborhood structures incrementally, and proposals
invalidated by an earlier accepted move in the same batch fall back to an
exact scalar re-evaluation, keeping the chain's output independent of the
batch size.
"""

from __future__ import annotations

from repro.generators.rewiring.chain import record_chain_stats
from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    propose_0k_move,
    propose_1k_swap,
    propose_2k_swap,
)
from repro.generators.threek import ThreeKTracker
from repro.graph.simple_graph import SimpleGraph
from repro.kernels.backend import get_kernel, register_kernel, resolve_backend
from repro.telemetry import span
from repro.utils.rng import RngLike, ensure_rng


def _target_moves(graph: SimpleGraph, multiplier: float) -> int:
    return max(1, int(multiplier * graph.number_of_edges))


def _finish(
    stats: dict | None, *, d: int, target: int, accepted: int, attempted: int
) -> None:
    """Record the unified chain stats (and warn when the budget bound)."""
    record_chain_stats(
        stats,
        label=f"{d}K-preserving randomizing",
        target=target,
        accepted=accepted,
        attempted=attempted,
        stacklevel=4,
    )
    if stats is not None:
        stats["engine"] = "python"


def _randomize_0k_python(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """0K-preserving randomization of a copy of ``graph`` (python engine)."""
    rng = ensure_rng(rng)
    result = graph.copy()
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        move = propose_0k_move(result, rng)
        if move is None:
            continue
        move.apply(result)
        accepted += 1
    _finish(stats, d=0, target=target, accepted=accepted, attempted=attempted)
    return result


def _randomize_1k_python(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """1K-preserving (degree-preserving) randomization (python engine)."""
    rng = ensure_rng(rng)
    result = graph.copy()
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_1k_swap(result, rng)
        if swap is None:
            continue
        swap.apply(result)
        accepted += 1
    _finish(stats, d=1, target=target, accepted=accepted, attempted=attempted)
    return result


def _randomize_2k_python(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
) -> SimpleGraph:
    """2K-preserving (JDD-preserving) randomization (python engine)."""
    rng = ensure_rng(rng)
    result = graph.copy()
    index = EdgeEndIndex(result)
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * target
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        swap.apply(result)
        index.apply_swap(swap)
        accepted += 1
    _finish(stats, d=2, target=target, accepted=accepted, attempted=attempted)
    return result


def _randomize_3k_python(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 200,
    stats: dict | None = None,
) -> SimpleGraph:
    """3K-preserving randomization (python engine).

    Proposals are 2K-preserving swaps; a proposal is accepted only if the
    wedge and triangle distributions are left exactly unchanged.  Because the
    3K space is typically very constrained (cf. Table 5 of the paper), the
    attempt budget is the binding limit rather than the accepted-move target.
    """
    rng = ensure_rng(rng)
    result = graph.copy()
    index = EdgeEndIndex(result)
    tracker = ThreeKTracker(result)
    target = _target_moves(result, multiplier)
    budget = max_attempt_factor * max(result.number_of_edges, 1)
    attempted = 0
    accepted = 0
    while accepted < target and attempted < budget:
        attempted += 1
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        delta = tracker.apply_edges(result, list(swap.removals), list(swap.additions))
        if delta.is_zero():
            index.apply_swap(swap)
            tracker.commit(delta)
            accepted += 1
        else:
            tracker.revert_edges(result, list(swap.removals), list(swap.additions))
    _finish(stats, d=3, target=target, accepted=accepted, attempted=attempted)
    return result


_PYTHON_CHAINS = {
    0: _randomize_0k_python,
    1: _randomize_1k_python,
    2: _randomize_2k_python,
    3: _randomize_3k_python,
}


@register_kernel("rewire_randomize", "python")
def _randomize_python(
    graph: SimpleGraph,
    d: int,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int | None = None,
    stats: dict | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """Python-engine kernel: per-move loops (``batch_size`` is ignored)."""
    if d not in _PYTHON_CHAINS:
        raise ValueError(f"dK-randomizing rewiring is implemented for d in 0..3, got {d}")
    if max_attempt_factor is None:
        max_attempt_factor = 200 if d == 3 else 50
    return _PYTHON_CHAINS[d](
        graph,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=max_attempt_factor,
        stats=stats,
    )


def _run_randomize(
    graph: SimpleGraph,
    d: int,
    *,
    rng: RngLike,
    multiplier: float,
    max_attempt_factor: int | None,
    stats: dict | None,
    backend: str | None,
    batch_size: int | None,
) -> SimpleGraph:
    """Resolve the engine for ``graph`` and run the d-level chain on it."""
    concrete = resolve_backend(graph, backend)
    kernel = get_kernel("rewire_randomize", concrete)
    with span(
        "kernel.rewire_randomize",
        backend=concrete,
        d=d,
        n=graph.number_of_nodes,
        m=graph.number_of_edges,
    ):
        return kernel(
            graph,
            d,
            rng=rng,
            multiplier=multiplier,
            max_attempt_factor=max_attempt_factor,
            stats=stats,
            batch_size=batch_size,
        )


def randomize_0k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
    backend: str | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """0K-preserving randomization of a copy of ``graph``."""
    return _run_randomize(
        graph,
        0,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=max_attempt_factor,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )


def randomize_1k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
    backend: str | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """1K-preserving (degree-preserving) randomization of a copy of ``graph``."""
    return _run_randomize(
        graph,
        1,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=max_attempt_factor,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )


def randomize_2k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 50,
    stats: dict | None = None,
    backend: str | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """2K-preserving (JDD-preserving) randomization of a copy of ``graph``."""
    return _run_randomize(
        graph,
        2,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=max_attempt_factor,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )


def randomize_3k(
    graph: SimpleGraph,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    max_attempt_factor: int = 200,
    stats: dict | None = None,
    backend: str | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """3K-preserving randomization of a copy of ``graph``.

    Proposals are 2K-preserving swaps accepted only when the wedge and
    triangle distributions stay exactly unchanged; the attempt budget is
    usually the binding limit (cf. Table 5 of the paper).
    """
    return _run_randomize(
        graph,
        3,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=max_attempt_factor,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )


def dk_randomize(
    graph: SimpleGraph,
    d: int,
    *,
    rng: RngLike = None,
    multiplier: float = 10.0,
    stats: dict | None = None,
    backend: str | None = None,
    batch_size: int | None = None,
) -> SimpleGraph:
    """Dispatch to the dK-preserving randomizer for ``d`` in ``{0, 1, 2, 3}``.

    When a ``stats`` dict is supplied, the chain's accepted/attempted move
    counts, convergence flag and engine name are recorded into it.
    ``backend`` selects the rewiring engine ("python", "csr" or "auto" — see
    :mod:`repro.kernels.backend`); ``batch_size`` tunes the vectorized
    engine's proposal batches without affecting its output.
    """
    if d not in (0, 1, 2, 3):
        raise ValueError(f"dK-randomizing rewiring is implemented for d in 0..3, got {d}")
    return _run_randomize(
        graph,
        d,
        rng=rng,
        multiplier=multiplier,
        max_attempt_factor=None,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )


def verify_randomization_converged(
    graph: SimpleGraph,
    d: int,
    metric,
    *,
    rng: RngLike = None,
    extra_multiplier: float = 5.0,
    relative_tolerance: float = 0.1,
    backend: str | None = None,
) -> bool:
    """Convergence check advocated by the paper: rewire some more and see
    whether a chosen scalar ``metric(graph)`` stays (approximately) unchanged.

    Parameters
    ----------
    graph:
        An already-randomized dK-graph.
    d:
        The dK level that must be preserved by the extra rewirings.
    metric:
        Callable mapping a graph to a float.
    extra_multiplier:
        How many extra accepted moves (in units of ``m``) to apply.
    relative_tolerance:
        Maximum allowed relative change of the metric.
    backend:
        Rewiring engine for the extra chain (default: auto-resolved).
    """
    before = float(metric(graph))
    extra = dk_randomize(graph, d, rng=rng, multiplier=extra_multiplier, backend=backend)
    after = float(metric(extra))
    scale = max(abs(before), abs(after), 1e-12)
    return abs(after - before) / scale <= relative_tolerance


__all__ = [
    "randomize_0k",
    "randomize_1k",
    "randomize_2k",
    "randomize_3k",
    "dk_randomize",
    "verify_randomization_converged",
]
