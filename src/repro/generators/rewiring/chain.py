"""Shared bookkeeping for the rewiring chain drivers.

Both rewiring engines (the pure-Python per-move loops and the vectorized
batch engine in :mod:`repro.kernels.rewiring`) report their outcome through
the helpers here, so the stats dictionaries are identical across engines
and a chain that exhausts its attempt budget is surfaced the same way
everywhere: a :class:`~repro.exceptions.RewiringConvergenceWarning` from the
driver itself, instead of a silently dropped caller-opt-in stats dict.
"""

from __future__ import annotations

import warnings

from repro.exceptions import RewiringConvergenceWarning
from repro.telemetry.metrics import counter_inc, gauge_set

#: Proposals drawn per vectorized batch.  A pure performance knob: the
#: vectorized engine consumes each random stream per-proposal, so the chain's
#: output is identical for every batch size.
DEFAULT_BATCH_SIZE = 4096

#: Default batch for the 3K chains.  Their wedge/triangle deltas are
#: precomputed for the whole batch against a state snapshot, and every
#: accepted move invalidates the precomputation for later proposals touching
#: the same nodes (those fall back to an exact per-move recompute) — so the
#: sweet spot is much smaller than for the d <= 2 chains.  Still a pure
#: performance knob: the output is identical for every batch size.
THREEK_BATCH_SIZE = 768


def record_chain_stats(
    stats: dict | None,
    *,
    label: str,
    target: int,
    accepted: int,
    attempted: int,
    converged: bool | None = None,
    warn: bool = True,
    stacklevel: int = 3,
) -> None:
    """Fill the caller-supplied ``stats`` dict and warn on non-convergence.

    ``converged`` defaults to "the accepted-move target was reached"; the
    targeting chains pass their own flag (distance-to-target is zero).  The
    warning fires regardless of whether a ``stats`` dict was supplied — the
    driver, not the caller, owns convergence reporting.
    """
    if converged is None:
        converged = accepted >= target
    counter_inc("repro_rewiring_accepted_moves_total", accepted, chain=label)
    counter_inc("repro_rewiring_attempted_moves_total", attempted, chain=label)
    if stats is not None:
        stats["target_moves"] = target
        stats["accepted_moves"] = accepted
        stats["attempted_moves"] = attempted
        stats["converged"] = converged
    if warn and not converged:
        warn_not_converged(
            label,
            f"accepted {accepted}/{target} moves in {attempted} attempts",
            stacklevel=stacklevel + 1,
        )


def record_batch_efficiency(label: str, accepted: int, attempted: int) -> None:
    """Publish the acceptance ratio of one proposal batch.

    The vectorized engine calls this once per batch so operators can watch
    ``repro_rewiring_batch_efficiency`` (accepted/attempted, labelled by
    chain) on ``/v1/metrics`` — a chain whose ratio collapses is wasting its
    precomputed batch work and wants a smaller ``batch_size``.
    """
    if attempted > 0:
        gauge_set(
            "repro_rewiring_batch_efficiency", accepted / attempted, chain=label
        )


def warn_not_converged(label: str, detail: str, *, stacklevel: int = 3) -> None:
    """Emit the driver-level non-convergence warning."""
    warnings.warn(
        f"{label} rewiring chain stopped before convergence ({detail}); "
        "consider raising the attempt budget (max_attempt_factor / max_attempts)",
        RewiringConvergenceWarning,
        stacklevel=stacklevel,
    )


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "THREEK_BATCH_SIZE",
    "record_batch_efficiency",
    "record_chain_stats",
    "warn_not_converged",
]
