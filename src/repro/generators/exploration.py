"""dK-space explorations (Section 4.3 of the paper).

A dK-space exploration constructs *non-random* dK-graphs: graphs constrained
by ``P_d`` but with extreme values of a simple scalar metric that is defined
by ``P_{d+1}`` and not by ``P_d``.  The paper uses:

* 1K-space: the likelihood ``S = Σ_{edges} k_u k_v`` (defined by 2K),
* 2K-space: the second-order likelihood ``S2`` (degree correlations at
  distance two, defined by the wedge component of 3K) and the mean
  clustering ``C̄`` (defined by the triangle component of 3K).

Each exploration is a targeting rewiring that accepts a dK-preserving move
only when it pushes the chosen metric in the requested direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal


from repro.generators.rewiring.swaps import (
    EdgeEndIndex,
    propose_1k_swap,
    propose_2k_swap,
)
from repro.generators.threek import ThreeKDelta, ThreeKTracker
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng

Mode = Literal["max", "min"]


@dataclass
class ExplorationResult:
    """Outcome of a dK-space exploration run."""

    graph: SimpleGraph
    metric_value: float
    accepted_moves: int
    attempted_moves: int
    metric_trace: list[float]


def _improves(change: float, mode: Mode) -> bool:
    if mode == "max":
        return change > 0
    if mode == "min":
        return change < 0
    raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")


def likelihood(graph: SimpleGraph) -> float:
    """Likelihood ``S = Σ_{(u,v) in E} k_u k_v`` (Li et al.)."""
    degrees = graph.degrees()
    return float(sum(degrees[u] * degrees[v] for u, v in graph.edges()))


def explore_1k_likelihood(
    graph: SimpleGraph,
    mode: Mode = "max",
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
) -> ExplorationResult:
    """1K-space exploration: drive ``S`` to its extreme with 1K-preserving swaps.

    This is the experiment that led Li et al. to conclude that the degree
    distribution alone (d = 1) is not constraining enough for router-level
    topologies.
    """
    rng = ensure_rng(rng)
    result = graph.copy()
    degrees = result.degrees()
    value = likelihood(result)
    if max_attempts is None:
        max_attempts = 100 * max(result.number_of_edges, 1)

    accepted = 0
    trace = [value]
    for attempt in range(max_attempts):
        swap = propose_1k_swap(result, rng)
        if swap is None:
            continue
        change = 0.0
        for u, v in swap.removals:
            change -= degrees[u] * degrees[v]
        for u, v in swap.additions:
            change += degrees[u] * degrees[v]
        if _improves(change, mode):
            swap.apply(result)
            value += change
            accepted += 1
            if accepted % 1000 == 0:
                trace.append(value)
    trace.append(value)
    return ExplorationResult(
        graph=result,
        metric_value=value,
        accepted_moves=accepted,
        attempted_moves=max_attempts,
        metric_trace=trace,
    )


def _second_order_likelihood_change(degrees: list[int], delta: ThreeKDelta) -> float:
    change = 0.0
    for (ka, _kc, kb), count in delta.wedges.items():
        change += count * ka * kb
    for (ka, kb, kc), count in delta.triangles.items():
        change += count * (ka * kb + ka * kc + kb * kc)
    return change


def _mean_clustering_change(degrees: list[int], delta: ThreeKDelta, n: int) -> float:
    change = 0.0
    for node, triangles in delta.node_triangles.items():
        k = degrees[node]
        if k < 2:
            continue
        change += triangles / (k * (k - 1) / 2.0)
    return change / n if n else 0.0


def explore_2k(
    graph: SimpleGraph,
    metric: Literal["clustering", "s2"],
    mode: Mode = "max",
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
) -> ExplorationResult:
    """2K-space exploration: drive ``C̄`` or ``S2`` to an extreme with
    2K-preserving (JDD-preserving) swaps."""
    rng = ensure_rng(rng)
    result = graph.copy()
    degrees = result.degrees()
    n = result.number_of_nodes
    index = EdgeEndIndex(result)
    tracker = ThreeKTracker(result)

    if metric == "clustering":
        value = sum(
            tracker.node_triangles[node] / (degrees[node] * (degrees[node] - 1) / 2.0)
            for node in range(n)
            if degrees[node] >= 2
        ) / n if n else 0.0
    elif metric == "s2":
        value = 0.0
        for (ka, _kc, kb), count in tracker.wedges.items():
            value += count * ka * kb
        for (ka, kb, kc), count in tracker.triangles.items():
            value += count * (ka * kb + ka * kc + kb * kc)
    else:
        raise ValueError(f"metric must be 'clustering' or 's2', got {metric!r}")

    if max_attempts is None:
        max_attempts = 100 * max(result.number_of_edges, 1)

    accepted = 0
    trace = [value]
    for attempt in range(max_attempts):
        swap = propose_2k_swap(result, index, rng)
        if swap is None:
            continue
        delta = tracker.apply_edges(result, list(swap.removals), list(swap.additions))
        if metric == "clustering":
            change = _mean_clustering_change(degrees, delta, n)
        else:
            change = _second_order_likelihood_change(degrees, delta)
        if _improves(change, mode):
            index.apply_swap(swap)
            tracker.commit(delta)
            value += change
            accepted += 1
            if accepted % 1000 == 0:
                trace.append(value)
        else:
            tracker.revert_edges(result, list(swap.removals), list(swap.additions))
    trace.append(value)
    return ExplorationResult(
        graph=result,
        metric_value=value,
        accepted_moves=accepted,
        attempted_moves=max_attempts,
        metric_trace=trace,
    )


def extreme_metric_gap(
    graph: SimpleGraph,
    d: int,
    *,
    rng: RngLike = None,
    max_attempts: int | None = None,
) -> dict[str, float]:
    """Gap between extreme values of the next-level metrics for a dK space.

    This is the paper's heuristic for deciding whether a given ``d`` is
    constraining enough: explore the dK space toward the maximum and minimum
    of metrics defined by ``P_{d+1}`` and report the spread.
    """
    rng = ensure_rng(rng)
    if d == 1:
        high = explore_1k_likelihood(graph, "max", rng=rng, max_attempts=max_attempts)
        low = explore_1k_likelihood(graph, "min", rng=rng, max_attempts=max_attempts)
        return {"metric": 1.0, "max": high.metric_value, "min": low.metric_value,
                "gap": high.metric_value - low.metric_value}
    if d == 2:
        high = explore_2k(graph, "clustering", "max", rng=rng, max_attempts=max_attempts)
        low = explore_2k(graph, "clustering", "min", rng=rng, max_attempts=max_attempts)
        return {"metric": 2.0, "max": high.metric_value, "min": low.metric_value,
                "gap": high.metric_value - low.metric_value}
    raise ValueError("extreme_metric_gap is implemented for d in {1, 2}")


__all__ = [
    "ExplorationResult",
    "likelihood",
    "explore_1k_likelihood",
    "explore_2k",
    "extreme_metric_gap",
]
