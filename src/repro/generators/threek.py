"""Incremental 3K bookkeeping.

A degree-preserving double-edge swap changes the wedge and triangle
distributions only in the neighbourhood of the four touched nodes.  This
module computes *exact* per-edge-toggle deltas in O(deg) time, which powers:

* the 3K-preserving acceptance test of the randomizing rewiring
  (accept only if both deltas are identically zero),
* the ``D_3`` objective of 3K-targeting rewiring,
* the incremental mean-clustering updates of 2K-space exploration.

All keys use the *fixed* degree array captured when the tracker is created;
this is correct because every supported rewiring move is degree-preserving.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.exceptions import GraphError
from repro.graph.simple_graph import SimpleGraph
from repro.graph.subgraphs import (
    triangle_degree_counts,
    triangle_key,
    triangles_per_node,
    wedge_degree_counts,
    wedge_key,
)


@dataclass
class ThreeKDelta:
    """Change of the 3K counts (and per-node triangle counts) of one or more toggles."""

    wedges: Counter = field(default_factory=Counter)
    triangles: Counter = field(default_factory=Counter)
    node_triangles: Counter = field(default_factory=Counter)

    def is_zero(self) -> bool:
        """True when neither wedge nor triangle counts changed."""
        return not any(self.wedges.values()) and not any(self.triangles.values())

    def merge(self, other: "ThreeKDelta") -> None:
        """Accumulate another delta into this one."""
        self.wedges.update(other.wedges)
        self.triangles.update(other.triangles)
        self.node_triangles.update(other.node_triangles)

    def negate(self) -> "ThreeKDelta":
        """The opposite delta (used when a tentative change is reverted)."""
        return ThreeKDelta(
            wedges=Counter({k: -v for k, v in self.wedges.items()}),
            triangles=Counter({k: -v for k, v in self.triangles.items()}),
            node_triangles=Counter({k: -v for k, v in self.node_triangles.items()}),
        )


def remove_edge_delta(graph: SimpleGraph, degrees: list[int], u: int, v: int) -> ThreeKDelta:
    """Delta caused by removing edge ``(u, v)``; the edge is actually removed.

    ``degrees`` is the fixed degree array the 3K keys are expressed in.
    """
    if not graph.has_edge(u, v):
        raise GraphError(f"edge ({u}, {v}) is not present")
    delta = ThreeKDelta()
    ku, kv = degrees[u], degrees[v]
    neighbors_u = graph.neighbors(u)
    neighbors_v = graph.neighbors(v)
    for x in neighbors_u:
        if x == v:
            continue
        kx = degrees[x]
        if x in neighbors_v:
            # triangle u-v-x destroyed; the two surviving edges form a wedge
            # centred at x.
            delta.triangles[triangle_key(ku, kv, kx)] -= 1
            delta.wedges[wedge_key(kx, ku, kv)] += 1
            delta.node_triangles[u] -= 1
            delta.node_triangles[v] -= 1
            delta.node_triangles[x] -= 1
        else:
            # open wedge v - u - x destroyed
            delta.wedges[wedge_key(ku, kv, kx)] -= 1
    for y in neighbors_v:
        if y == u or y in neighbors_u:
            continue
        # open wedge u - v - y destroyed
        delta.wedges[wedge_key(kv, ku, degrees[y])] -= 1
    graph.remove_edge(u, v)
    return delta


def add_edge_delta(graph: SimpleGraph, degrees: list[int], u: int, v: int) -> ThreeKDelta:
    """Delta caused by adding edge ``(u, v)``; the edge is actually added."""
    if graph.has_edge(u, v):
        raise GraphError(f"edge ({u}, {v}) is already present")
    if u == v:
        raise GraphError("cannot add a self-loop")
    delta = ThreeKDelta()
    ku, kv = degrees[u], degrees[v]
    neighbors_u = graph.neighbors(u)
    neighbors_v = graph.neighbors(v)
    for x in neighbors_u:
        kx = degrees[x]
        if x in neighbors_v:
            # new triangle u-v-x; the wedge centred at x closes
            delta.triangles[triangle_key(ku, kv, kx)] += 1
            delta.wedges[wedge_key(kx, ku, kv)] -= 1
            delta.node_triangles[u] += 1
            delta.node_triangles[v] += 1
            delta.node_triangles[x] += 1
        else:
            # new open wedge v - u - x
            delta.wedges[wedge_key(ku, kv, kx)] += 1
    for y in neighbors_v:
        if y == u or y in neighbors_u:
            continue
        # new open wedge u - v - y
        delta.wedges[wedge_key(kv, ku, degrees[y])] += 1
    graph.add_edge(u, v)
    return delta


class ThreeKTracker:
    """Maintains the 3K counts of a graph while it is being rewired.

    The tracker owns the *fixed* degree array and the current wedge/triangle
    counters.  ``apply_swap`` performs the edge toggles of a swap while
    computing its exact delta; ``revert_swap`` undoes them; ``commit`` folds a
    delta into the maintained counters.
    """

    def __init__(self, graph: SimpleGraph):
        self.degrees = graph.degrees()
        self.wedges: Counter = wedge_degree_counts(graph)
        self.triangles: Counter = triangle_degree_counts(graph)
        self.node_triangles: list[int] = triangles_per_node(graph)

    # -- toggles ----------------------------------------------------------- #
    def apply_edges(
        self,
        graph: SimpleGraph,
        removals: list[tuple[int, int]],
        additions: list[tuple[int, int]],
    ) -> ThreeKDelta:
        """Toggle the given edges sequentially, returning the combined delta.

        The graph is left in the modified state; the tracker's counters are
        *not* updated until :meth:`commit` is called.
        """
        total = ThreeKDelta()
        for u, v in removals:
            total.merge(remove_edge_delta(graph, self.degrees, u, v))
        for u, v in additions:
            total.merge(add_edge_delta(graph, self.degrees, u, v))
        return total

    def revert_edges(
        self,
        graph: SimpleGraph,
        removals: list[tuple[int, int]],
        additions: list[tuple[int, int]],
    ) -> None:
        """Undo a previous :meth:`apply_edges` call (same arguments)."""
        for u, v in additions:
            graph.remove_edge(u, v)
        for u, v in removals:
            graph.add_edge(u, v)

    def commit(self, delta: ThreeKDelta) -> None:
        """Fold an accepted delta into the tracked counters."""
        self.wedges.update(delta.wedges)
        self.triangles.update(delta.triangles)
        for node, change in delta.node_triangles.items():
            self.node_triangles[node] += change
        # keep the counters clean of zero entries so equality checks stay exact
        for key in [k for k, v in self.wedges.items() if v == 0]:
            del self.wedges[key]
        for key in [k for k, v in self.triangles.items() if v == 0]:
            del self.triangles[key]


__all__ = [
    "ThreeKDelta",
    "ThreeKTracker",
    "remove_edge_delta",
    "add_edge_delta",
]
