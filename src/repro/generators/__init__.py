"""Graph generators: stochastic, pseudograph, matching, rewiring, exploration.

The construction-algorithm families are catalogued in
:mod:`repro.generators.registry`; use :func:`available_generators` to list
them and :func:`register_generator` to plug in new ones.
"""

from repro.generators import matching, pseudograph, stochastic
from repro.generators.exploration import (
    ExplorationResult,
    explore_1k_likelihood,
    explore_2k,
    extreme_metric_gap,
    likelihood,
)
from repro.generators.matching import matching_1k, matching_2k
from repro.generators.pseudograph import pseudograph_1k, pseudograph_2k
from repro.generators.rewiring.counting import (
    RewiringCounts,
    count_dk_rewirings,
    rewiring_count_table,
)
from repro.generators.rewiring.preserving import (
    dk_randomize,
    randomize_0k,
    randomize_1k,
    randomize_2k,
    randomize_3k,
    verify_randomization_converged,
)
from repro.generators.registry import (
    GenerationResult,
    GeneratorInputError,
    GeneratorSpec,
    UnknownGeneratorError,
    UnsupportedLevelError,
    available_generators,
    get_generator,
    register_generator,
)
from repro.generators.rewiring.targeting import (
    TargetingResult,
    dk_targeting_construct,
    dk_targeting_result,
    target_2k_from_1k,
    target_3k_from_2k,
)
from repro.generators.stochastic import stochastic_0k, stochastic_1k, stochastic_2k
from repro.generators.threek import ThreeKDelta, ThreeKTracker

__all__ = [
    "matching",
    "pseudograph",
    "stochastic",
    "stochastic_0k",
    "stochastic_1k",
    "stochastic_2k",
    "pseudograph_1k",
    "pseudograph_2k",
    "matching_1k",
    "matching_2k",
    "dk_randomize",
    "randomize_0k",
    "randomize_1k",
    "randomize_2k",
    "randomize_3k",
    "verify_randomization_converged",
    "GenerationResult",
    "GeneratorSpec",
    "GeneratorInputError",
    "UnknownGeneratorError",
    "UnsupportedLevelError",
    "available_generators",
    "get_generator",
    "register_generator",
    "TargetingResult",
    "target_2k_from_1k",
    "target_3k_from_2k",
    "dk_targeting_construct",
    "dk_targeting_result",
    "RewiringCounts",
    "count_dk_rewirings",
    "rewiring_count_table",
    "ExplorationResult",
    "explore_1k_likelihood",
    "explore_2k",
    "extreme_metric_gap",
    "likelihood",
    "ThreeKDelta",
    "ThreeKTracker",
]
