"""Graph generators: stochastic, pseudograph, matching, rewiring, exploration.

The construction-algorithm families are catalogued in
:mod:`repro.generators.registry`; use :func:`available_generators` to list
them and :func:`register_generator` to plug in new ones.

Exports are lazy (PEP 562, like the other ``repro`` packages): the rewiring
engines' pure-Python path (``dk_randomize`` and friends with
``backend="python"``) works on a bare interpreter, while the NumPy-dependent
families are only imported when first accessed.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "stochastic_0k": "repro.generators.stochastic",
    "stochastic_1k": "repro.generators.stochastic",
    "stochastic_2k": "repro.generators.stochastic",
    "pseudograph_1k": "repro.generators.pseudograph",
    "pseudograph_2k": "repro.generators.pseudograph",
    "matching_1k": "repro.generators.matching",
    "matching_2k": "repro.generators.matching",
    "dk_randomize": "repro.generators.rewiring.preserving",
    "randomize_0k": "repro.generators.rewiring.preserving",
    "randomize_1k": "repro.generators.rewiring.preserving",
    "randomize_2k": "repro.generators.rewiring.preserving",
    "randomize_3k": "repro.generators.rewiring.preserving",
    "verify_randomization_converged": "repro.generators.rewiring.preserving",
    "GenerationResult": "repro.generators.registry",
    "GeneratorSpec": "repro.generators.registry",
    "GeneratorInputError": "repro.generators.registry",
    "UnknownGeneratorError": "repro.generators.registry",
    "UnsupportedLevelError": "repro.generators.registry",
    "available_generators": "repro.generators.registry",
    "get_generator": "repro.generators.registry",
    "register_generator": "repro.generators.registry",
    "TargetingResult": "repro.generators.rewiring.targeting",
    "target_2k_from_1k": "repro.generators.rewiring.targeting",
    "target_3k_from_2k": "repro.generators.rewiring.targeting",
    "dk_targeting_construct": "repro.generators.rewiring.targeting",
    "dk_targeting_result": "repro.generators.rewiring.targeting",
    "RewiringCounts": "repro.generators.rewiring.counting",
    "count_dk_rewirings": "repro.generators.rewiring.counting",
    "rewiring_count_table": "repro.generators.rewiring.counting",
    "ExplorationResult": "repro.generators.exploration",
    "explore_1k_likelihood": "repro.generators.exploration",
    "explore_2k": "repro.generators.exploration",
    "extreme_metric_gap": "repro.generators.exploration",
    "likelihood": "repro.generators.exploration",
    "ThreeKDelta": "repro.generators.threek",
    "ThreeKTracker": "repro.generators.threek",
}

#: Submodules reachable as attributes (``repro.generators.registry`` etc.) —
#: everything the eager imports used to bind on the package.
_SUBMODULES = (
    "baselines",
    "exploration",
    "matching",
    "pseudograph",
    "registry",
    "rewiring",
    "stochastic",
    "threek",
)

__all__ = [*_SUBMODULES, *_EXPORTS]

_lazy_getattr, __dir__ = lazy_exports(__name__, _EXPORTS)


def __getattr__(name: str):
    if name in _SUBMODULES:
        # importing the submodule binds it on this package as a side effect
        import importlib

        return importlib.import_module(f"repro.generators.{name}")
    return _lazy_getattr(name)
