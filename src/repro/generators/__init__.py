"""Graph generators: stochastic, pseudograph, matching, rewiring, exploration."""

from repro.generators import matching, pseudograph, stochastic
from repro.generators.exploration import (
    ExplorationResult,
    explore_1k_likelihood,
    explore_2k,
    extreme_metric_gap,
    likelihood,
)
from repro.generators.matching import matching_1k, matching_2k
from repro.generators.pseudograph import pseudograph_1k, pseudograph_2k
from repro.generators.rewiring.counting import (
    RewiringCounts,
    count_dk_rewirings,
    rewiring_count_table,
)
from repro.generators.rewiring.preserving import (
    dk_randomize,
    randomize_0k,
    randomize_1k,
    randomize_2k,
    randomize_3k,
    verify_randomization_converged,
)
from repro.generators.rewiring.targeting import (
    TargetingResult,
    dk_targeting_construct,
    target_2k_from_1k,
    target_3k_from_2k,
)
from repro.generators.stochastic import stochastic_0k, stochastic_1k, stochastic_2k
from repro.generators.threek import ThreeKDelta, ThreeKTracker

__all__ = [
    "matching",
    "pseudograph",
    "stochastic",
    "stochastic_0k",
    "stochastic_1k",
    "stochastic_2k",
    "pseudograph_1k",
    "pseudograph_2k",
    "matching_1k",
    "matching_2k",
    "dk_randomize",
    "randomize_0k",
    "randomize_1k",
    "randomize_2k",
    "randomize_3k",
    "verify_randomization_converged",
    "TargetingResult",
    "target_2k_from_1k",
    "target_3k_from_2k",
    "dk_targeting_construct",
    "RewiringCounts",
    "count_dk_rewirings",
    "rewiring_count_table",
    "ExplorationResult",
    "explore_1k_likelihood",
    "explore_2k",
    "extreme_metric_gap",
    "likelihood",
    "ThreeKDelta",
    "ThreeKTracker",
]
