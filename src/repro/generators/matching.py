"""Matching dK-graph constructions (Section 4.1.3 of the paper).

The matching approach is the loop-avoiding variant of the pseudograph
approach: stub pairs (1K) or edge-end groupings (2K) that would create
self-loops or parallel edges are skipped during construction.  Loop avoidance
can deadlock -- the remaining stubs may only form forbidden pairs -- so both
constructions finish with a *repair* phase that frees compatible stubs by
rewiring already-placed edges (the "additional techniques" the paper
mentions).
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import DegreeDistribution, JointDegreeDistribution
from repro.exceptions import GenerationError
from repro.graph.components import giant_component
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def _repair_place_pair(
    graph: SimpleGraph,
    u: int,
    v: int,
    rng: np.random.Generator,
    attempts: int = 200,
) -> bool:
    """Place the stub pair ``(u, v)`` that cannot be connected directly.

    An existing edge ``(x, y)`` is removed and the two edges ``(u, x)`` and
    ``(v, y)`` are added instead; degrees of ``x`` and ``y`` are unchanged and
    ``u`` and ``v`` each consume one stub, exactly as if ``(u, v)`` had been
    placed.  Returns ``True`` on success.
    """
    m = graph.number_of_edges
    if m == 0:
        return False
    for _ in range(attempts):
        x, y = graph.edge_at(int(rng.integers(m)))
        if rng.random() < 0.5:
            x, y = y, x
        if u in (x, y) or v in (x, y):
            continue
        if graph.has_edge(u, x) or graph.has_edge(v, y):
            continue
        graph.remove_edge(x, y)
        graph.add_edge(u, x)
        graph.add_edge(v, y)
        return True
    return False


def matching_1k(
    one_k: DegreeDistribution,
    *,
    rng: RngLike = None,
    connected: bool = False,
    strict: bool = False,
) -> SimpleGraph:
    """Loop-avoiding stub matching for a target degree distribution.

    Parameters
    ----------
    strict:
        When true, raise :class:`GenerationError` if some stubs cannot be
        placed even after the repair phase; otherwise those stubs are dropped
        (the resulting degree sequence is then very slightly smaller than the
        target, which the paper tolerates as well).
    """
    rng = ensure_rng(rng)
    if one_k.stub_count % 2:
        raise GenerationError("the degree distribution has an odd number of stubs")

    stubs: list[int] = []
    node = 0
    for degree in sorted(one_k.counts):
        for _ in range(one_k.counts[degree]):
            stubs.extend([node] * degree)
            node += 1
    graph = SimpleGraph(one_k.nodes)
    if not stubs:
        return graph

    order = np.array(stubs, dtype=np.int64)
    rng.shuffle(order)
    deferred: list[tuple[int, int]] = []
    for i in range(0, len(order) - 1, 2):
        u, v = int(order[i]), int(order[i + 1])
        if u == v or graph.has_edge(u, v):
            deferred.append((u, v))
            continue
        graph.add_edge(u, v)

    unplaced = 0
    for u, v in deferred:
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            continue
        if not _repair_place_pair(graph, u, v, rng):
            unplaced += 1
    if unplaced and strict:
        raise GenerationError(f"{unplaced} stub pairs could not be placed without loops")
    if connected:
        return giant_component(graph)
    return graph


def matching_2k(
    jdd: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    connected: bool = False,
    strict: bool = False,
    candidate_attempts: int = 40,
) -> SimpleGraph:
    """Loop-avoiding 2K construction (the paper's matching extension).

    Edges labelled ``(k1, k2)`` are placed one at a time between degree-class
    nodes with free stub capacity, avoiding self-loops and parallel edges.
    Edges that cannot be placed directly are repaired by rewiring an
    already-placed ``(k1, k2)`` edge, which preserves the joint degree
    distribution exactly.
    """
    rng = ensure_rng(rng)
    node_counts = jdd.node_counts()

    class_nodes: dict[int, list[int]] = {}
    next_id = 0
    for degree in sorted(node_counts):
        count = node_counts[degree]
        class_nodes[degree] = list(range(next_id, next_id + count))
        next_id += count
    graph = SimpleGraph(next_id + jdd.zero_degree_nodes)
    capacity = {}
    for degree, nodes in class_nodes.items():
        for node_id in nodes:
            capacity[node_id] = degree

    labelled_edges: list[tuple[int, int]] = []
    for (k1, k2), count in jdd.counts.items():
        labelled_edges.extend([(k1, k2)] * count)
    rng.shuffle(labelled_edges)

    def pick_with_capacity(degree: int, exclude: int | None = None) -> int | None:
        nodes = [x for x in class_nodes.get(degree, []) if capacity[x] > 0 and x != exclude]
        if not nodes:
            return None
        return nodes[int(rng.integers(len(nodes)))]

    deferred: list[tuple[int, int]] = []
    for k1, k2 in labelled_edges:
        placed = False
        for _ in range(candidate_attempts):
            u = pick_with_capacity(k1)
            if u is None:
                break
            v = pick_with_capacity(k2, exclude=u)
            if v is None:
                break
            if graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            capacity[u] -= 1
            capacity[v] -= 1
            placed = True
            break
        if not placed:
            deferred.append((k1, k2))

    # repair phase: place a deferred (k1, k2) edge by splitting an existing
    # (k1, k2) edge (x, y): remove it and connect the free-capacity nodes u, v
    # as (u, y) and (x, v), which adds exactly one (k1, k2) edge overall.
    edge_pool: dict[tuple[int, int], list[tuple[int, int]]] = {}
    degrees_of = {}
    for degree, nodes in class_nodes.items():
        for node_id in nodes:
            degrees_of[node_id] = degree

    def rebuild_pool() -> None:
        edge_pool.clear()
        for x, y in graph.edges():
            key = tuple(sorted((degrees_of.get(x, 0), degrees_of.get(y, 0))))
            edge_pool.setdefault(key, []).append((x, y))

    unplaced = 0
    if deferred:
        rebuild_pool()
    for k1, k2 in deferred:
        key = tuple(sorted((k1, k2)))
        candidates = edge_pool.get(key, [])
        success = False
        for _ in range(6):  # several fresh (u, v) choices before giving up
            if success:
                break
            u = pick_with_capacity(k1)
            v = pick_with_capacity(k2, exclude=u)
            if u is None or v is None or not candidates:
                break
            rng.shuffle(candidates)
            for x, y in list(candidates)[:candidate_attempts]:
                if not graph.has_edge(x, y):
                    continue
                # orient (x, y) so that x is in the k1 class and y in the k2 class
                if degrees_of[x] != k1 or degrees_of[y] != k2:
                    x, y = y, x
                if degrees_of[x] != k1 or degrees_of[y] != k2:
                    continue
                if u in (x, y) or v in (x, y):
                    continue
                if graph.has_edge(u, y) or graph.has_edge(x, v):
                    continue
                graph.remove_edge(x, y)
                graph.add_edge(u, y)
                graph.add_edge(x, v)
                capacity[u] -= 1
                capacity[v] -= 1
                candidates.append((u, y))
                candidates.append((x, v))
                success = True
                break
        if not success:
            unplaced += 1
    if unplaced and strict:
        raise GenerationError(f"{unplaced} labelled edges could not be placed without loops")
    if connected:
        return giant_component(graph)
    return graph


__all__ = ["matching_1k", "matching_2k"]
