"""Pseudograph (configuration-model) dK-graph constructions (Section 4.1.2).

* 1K: the classical configuration model / PLRG: attach ``k`` stubs to each
  node of target degree ``k`` and pair stubs uniformly at random; self-loops
  and parallel edges produced by the pairing are dropped.
* 2K (the paper's extension): prepare ``m(k1, k2)`` edges whose ends are
  labelled with the degrees ``k1`` and ``k2``; for every degree ``k`` the
  edge-ends labelled ``k`` are shuffled and grouped ``k`` at a time into the
  degree-``k`` nodes of the final graph.  Self-loops and parallel edges are
  again dropped when the pseudograph is simplified.

The functions return simple graphs (possibly with a few lost edges and small
extra components); callers interested in the paper's evaluation protocol
extract the giant connected component afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import DegreeDistribution, JointDegreeDistribution
from repro.exceptions import GenerationError
from repro.graph.components import giant_component
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def _stub_list(one_k: DegreeDistribution) -> list[int]:
    stubs: list[int] = []
    node = 0
    for degree in sorted(one_k.counts):
        for _ in range(one_k.counts[degree]):
            stubs.extend([node] * degree)
            node += 1
    return stubs


def pseudograph_1k(
    one_k: DegreeDistribution,
    *,
    rng: RngLike = None,
    connected: bool = False,
) -> SimpleGraph:
    """Configuration-model graph for the target degree distribution.

    Parameters
    ----------
    one_k:
        Target 1K-distribution.
    connected:
        When true, return only the giant connected component (the paper's
        post-processing step); node ids are then relabelled.
    """
    rng = ensure_rng(rng)
    if one_k.stub_count % 2:
        raise GenerationError("the degree distribution has an odd number of stubs")
    stubs = np.array(_stub_list(one_k), dtype=np.int64)
    graph = SimpleGraph(one_k.nodes)
    if len(stubs) == 0:
        return graph
    rng.shuffle(stubs)
    for i in range(0, len(stubs) - 1, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u == v:
            continue  # self-loop dropped
        graph.add_edge(u, v)  # parallel edges silently collapse
    if connected:
        return giant_component(graph)
    return graph


def pseudograph_2k(
    jdd: JointDegreeDistribution,
    *,
    rng: RngLike = None,
    connected: bool = False,
) -> SimpleGraph:
    """The paper's 2K pseudograph construction.

    Edge ends labelled with each degree ``k`` are randomly grouped ``k`` at a
    time into nodes; the grouping reproduces the target JDD exactly at the
    pseudograph level, and only the (few) self-loops and parallel edges lost
    during simplification perturb it.
    """
    rng = ensure_rng(rng)
    node_counts = jdd.node_counts()

    # allocate node ids per degree class
    class_nodes: dict[int, list[int]] = {}
    next_id = 0
    for degree in sorted(node_counts):
        count = node_counts[degree]
        class_nodes[degree] = list(range(next_id, next_id + count))
        next_id += count
    graph = SimpleGraph(next_id + jdd.zero_degree_nodes)

    # build the labelled edge list: one entry per edge, ends labelled (k1, k2)
    edges: list[tuple[int, int]] = []
    for (k1, k2), count in jdd.counts.items():
        edges.extend([(k1, k2)] * count)

    # for each degree, assign the edge-ends labelled with that degree to the
    # degree-k nodes in random order, k slots per node
    end_assignments: dict[int, list[int]] = {}
    for degree, nodes in class_nodes.items():
        slots = []
        for node in nodes:
            slots.extend([node] * degree)
        slots = np.array(slots, dtype=np.int64)
        rng.shuffle(slots)
        end_assignments[degree] = [int(x) for x in slots]

    cursors = {degree: 0 for degree in end_assignments}

    def next_node(degree: int) -> int:
        position = cursors[degree]
        cursors[degree] = position + 1
        return end_assignments[degree][position]

    for k1, k2 in edges:
        u = next_node(k1)
        v = next_node(k2)
        if u == v:
            continue  # self-loop dropped
        graph.add_edge(u, v)  # parallel edges silently collapse
    if connected:
        return giant_component(graph)
    return graph


__all__ = ["pseudograph_1k", "pseudograph_2k"]
