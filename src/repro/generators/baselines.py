"""Non-dK baseline generators: Erdős–Rényi and Barabási–Albert.

The paper's construction algorithms all target some level of the dK-series
of the original topology.  Figure 5-style comparisons benefit from reference
scenarios that deliberately do *not*: classical random-graph models matched
only on size.  Both baselines here consume the original graph and reproduce
its ``(n, m)`` while ignoring every degree correlation:

* :func:`erdos_renyi_like` — uniform ``G(n, m)``;
* :func:`barabasi_albert_like` — preferential attachment with the per-node
  edge budget chosen to land near ``m`` (power-law degrees, but none of the
  original's joint-degree structure).

They are registered in :mod:`repro.generators.registry` as ``erdos-renyi``
and ``barabasi-albert``; the requested dK level is ignored (recorded in the
stats), so the baselines slot into any experiment grid alongside the dK
constructions.
"""

from __future__ import annotations

from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def erdos_renyi_like(graph: SimpleGraph, *, rng: RngLike = None) -> SimpleGraph:
    """Uniform ``G(n, m)`` graph with the node and edge counts of ``graph``."""
    rng = ensure_rng(rng)
    n = graph.number_of_nodes
    target = min(graph.number_of_edges, n * (n - 1) // 2)
    result = SimpleGraph(n)
    while result.number_of_edges < target:
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v:
            result.add_edge(u, v)
    return result


def barabasi_albert_like(graph: SimpleGraph, *, rng: RngLike = None) -> SimpleGraph:
    """Barabási–Albert preferential-attachment graph sized like ``graph``.

    Each arriving node attaches to ``round(m / n)`` (at least 1) distinct
    existing nodes, chosen proportionally to their current degree, which
    lands the edge count near the original's ``m``.
    """
    rng = ensure_rng(rng)
    n = graph.number_of_nodes
    m_total = graph.number_of_edges
    result = SimpleGraph(n)
    if n < 2 or m_total == 0:
        return result
    per_node = max(1, round(m_total / n))
    core = min(n, per_node + 1)
    # seed core: a clique, so every early node has non-zero degree
    for u in range(core):
        for v in range(u + 1, core):
            result.add_edge(u, v)
    # repeated-endpoints list: drawing uniformly from it is degree-biased
    endpoints: list[int] = []
    for u, v in result.edges():
        endpoints.append(u)
        endpoints.append(v)
    for new in range(core, n):
        targets: set[int] = set()
        budget = min(per_node, new)
        while len(targets) < budget:
            targets.add(int(endpoints[int(rng.integers(len(endpoints)))]))
        for target in targets:
            result.add_edge(new, target)
            endpoints.append(new)
            endpoints.append(target)
    return result


__all__ = ["erdos_renyi_like", "barabasi_albert_like"]
