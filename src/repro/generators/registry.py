"""Generator registry: the pluggable catalogue of dK-construction algorithms.

The paper evaluates a *family* of construction algorithms — stochastic,
pseudograph, matching, dK-preserving rewiring and dK-targeting rewiring —
uniformly across ``d = 0..3``.  This module makes that family a first-class,
extensible API instead of hard-coded string dispatch:

* :class:`GeneratorSpec` describes one algorithm family: its name, the dK
  levels it supports, whether it consumes an original *graph* or an extracted
  dK-*distribution*, and the callable that builds the graph.
* :func:`register_generator` / :func:`get_generator` /
  :func:`available_generators` manage the process-wide registry; the five
  paper algorithms are registered on import, and downstream code (the
  ``repro`` CLI, the Experiment pipeline, the comparison harness) derives its
  method choices from here.
* :class:`GenerationResult` is the provenance envelope every registry build
  returns: the graph plus method, d, seed, wall time and the algorithm's
  convergence/rewiring statistics.

Extension point::

    from repro.generators.registry import GeneratorSpec, register_generator

    def my_builder(distribution, d, rng, **options):
        ...  # return a SimpleGraph, or (SimpleGraph, stats_dict)

    register_generator(GeneratorSpec(
        name="my-method",
        description="my custom 2K construction",
        supported_d=frozenset({2}),
        input_kind="distribution",
        builder=my_builder,
    ))
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Literal

import numpy as np

from repro.core.extraction import dk_distribution
from repro.generators.baselines import barabasi_albert_like, erdos_renyi_like
from repro.generators.matching import matching_1k, matching_2k
from repro.generators.pseudograph import pseudograph_1k, pseudograph_2k
from repro.generators.rewiring.preserving import dk_randomize
from repro.generators.rewiring.targeting import dk_targeting_result
from repro.generators.stochastic import stochastic_0k, stochastic_1k, stochastic_2k
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng

InputKind = Literal["graph", "distribution"]


class UnknownGeneratorError(ValueError):
    """Raised when looking up a generator name that is not registered."""


class UnsupportedLevelError(ValueError):
    """Raised when a generator is asked for a dK level it does not support."""


class GeneratorInputError(ValueError):
    """Raised when a generator receives the wrong kind of input.

    The canonical case is asking a graph-input algorithm (dK-preserving
    rewiring) to build from a bare dK-distribution: rewiring needs an
    original graph to start from.
    """


@dataclass(frozen=True)
class GenerationResult:
    """Provenance envelope around a generated graph.

    Attributes
    ----------
    graph:
        The constructed dK-random graph.
    method:
        Registry name of the algorithm that built it.
    d:
        dK level of the construction.
    seed:
        The integer seed the caller supplied, or ``None`` when an opaque
        generator (or no seed) was passed.
    wall_time:
        Construction wall time in seconds.
    stats:
        Algorithm-specific convergence/rewiring statistics (accepted and
        attempted moves, final target distance, ...).
    content_hash:
        Canonical content hash of the graph when known (set by the
        store-backed :func:`repro.store.memo.memoized_build`), ``None``
        otherwise.
    """

    graph: SimpleGraph
    method: str
    d: int
    seed: int | None
    wall_time: float
    stats: dict[str, Any] = field(default_factory=dict)
    content_hash: str | None = None

    def provenance(self) -> dict[str, Any]:
        """JSON-serializable provenance record (without the graph itself)."""
        return {
            "method": self.method,
            "d": self.d,
            "seed": self.seed,
            "wall_time": float(self.wall_time),
            "nodes": self.graph.number_of_nodes,
            "edges": self.graph.number_of_edges,
            "stats": json_safe(self.stats),
        }


@dataclass(frozen=True)
class GeneratorSpec:
    """One registered construction-algorithm family.

    ``builder`` is called as ``builder(source, d, rng, **options)`` where
    ``source`` is a :class:`SimpleGraph` (``input_kind == "graph"``) or the
    extracted dK-distribution for level ``d`` (``input_kind ==
    "distribution"``).  It returns either a bare :class:`SimpleGraph` or a
    ``(graph, stats)`` pair.
    """

    name: str
    description: str
    supported_d: frozenset[int]
    input_kind: InputKind
    builder: Callable[..., Any]
    #: Whether ``builder`` understands the ``backend=`` engine-selection
    #: kwarg (the rewiring-based algorithms).  The engine is an execution
    #: knob, not a construction parameter: it is forwarded out-of-band so it
    #: can never leak into the ``options`` dict that feeds store cache keys.
    accepts_backend: bool = False

    def supports(self, d: int) -> bool:
        """Whether this algorithm is defined for dK level ``d``."""
        return d in self.supported_d

    def check_supports(self, d: int) -> None:
        """Raise :class:`UnsupportedLevelError` unless ``d`` is supported."""
        if not self.supports(d):
            levels = ", ".join(str(level) for level in sorted(self.supported_d))
            raise UnsupportedLevelError(
                f"the {self.name!r} construction is only defined for d in {{{levels}}}, got {d}"
            )

    def levels_label(self) -> str:
        """Compact human-readable form of the supported levels, e.g. ``"0-3"``."""
        levels = sorted(self.supported_d)
        if levels == list(range(levels[0], levels[-1] + 1)) and len(levels) > 1:
            return f"{levels[0]}-{levels[-1]}"
        return ",".join(str(level) for level in levels)

    def build(
        self,
        source: Any,
        d: int,
        *,
        rng: RngLike = None,
        backend: str | None = None,
        **options: Any,
    ) -> GenerationResult:
        """Run the algorithm and wrap the output in a :class:`GenerationResult`.

        ``source`` may always be a :class:`SimpleGraph`; for
        distribution-input algorithms the level-``d`` distribution is
        extracted automatically.  Passing a bare distribution to a
        graph-input algorithm raises :class:`GeneratorInputError`.

        ``backend`` selects the rewiring engine for algorithms that run
        Markov chains (ignored by the others); it changes how the chain
        executes, never what it preserves, and is deliberately kept out of
        the ``options`` that form artifact-store cache keys.
        """
        if d not in (0, 1, 2, 3):
            raise ValueError(f"d must be in 0..3, got {d}")
        self.check_supports(d)

        if self.input_kind == "graph":
            if not isinstance(source, SimpleGraph):
                raise GeneratorInputError(
                    f"the {self.name!r} construction requires an original graph, "
                    f"not a bare {type(source).__name__}"
                )
        elif isinstance(source, SimpleGraph):
            source = dk_distribution(source, d)

        seed = None
        if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
            seed = int(rng)
        generator = ensure_rng(rng)
        if self.accepts_backend and backend is not None:
            options = {**options, "backend": backend}
        start = time.perf_counter()
        built = self.builder(source, d, generator, **options)
        wall_time = time.perf_counter() - start
        if isinstance(built, tuple):
            graph, stats = built
        else:
            graph, stats = built, {}
        return GenerationResult(
            graph=graph,
            method=self.name,
            d=d,
            seed=seed,
            wall_time=wall_time,
            stats=dict(stats),
        )


_REGISTRY: dict[str, GeneratorSpec] = {}


def register_generator(spec: GeneratorSpec, *, overwrite: bool = False) -> GeneratorSpec:
    """Add a generator family to the registry.

    Registering a name twice is an error unless ``overwrite=True``; this
    catches accidental shadowing of the built-in algorithms while still
    allowing deliberate replacement.
    """
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"generator {spec.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_generator(name: str) -> None:
    """Remove a generator family from the registry (no-op when absent).

    Mainly for tests and interactive sessions that register throw-away
    algorithms.
    """
    _REGISTRY.pop(name, None)


def get_generator(name: str) -> GeneratorSpec:
    """Look up a registered generator family by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownGeneratorError(
            f"unknown method {name!r}; registered generators: {known}"
        ) from None


def available_generators() -> dict[str, GeneratorSpec]:
    """Mapping of registered generator names to their specs (sorted by name)."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def json_safe(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays and containers to JSON-native types."""
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    if isinstance(value, bool):
        return value
    if hasattr(value, "tolist"):  # numpy array (or scalar)
        return value.tolist()
    if hasattr(value, "item"):  # other numpy-like scalar
        return value.item()
    return value


# --------------------------------------------------------------------------- #
# Built-in algorithm families (Sections 4.1.1-4.1.4 of the paper)
# --------------------------------------------------------------------------- #
def _build_rewiring(
    graph,
    d,
    rng,
    *,
    multiplier: float = 10.0,
    backend: str | None = None,
    batch_size: int | None = None,
):
    stats: dict[str, Any] = {}
    result = dk_randomize(
        graph,
        d,
        rng=rng,
        multiplier=multiplier,
        stats=stats,
        backend=backend,
        batch_size=batch_size,
    )
    return result, stats


def _build_stochastic(distribution, d, rng):
    builders = {0: stochastic_0k, 1: stochastic_1k, 2: stochastic_2k}
    return builders[d](distribution, rng=rng)


def _build_pseudograph(distribution, d, rng):
    builders = {1: pseudograph_1k, 2: pseudograph_2k}
    return builders[d](distribution, rng=rng)


def _build_matching(distribution, d, rng):
    builders = {1: matching_1k, 2: matching_2k}
    return builders[d](distribution, rng=rng)


def _build_targeting(
    distribution, d, rng, *, max_attempts: int | None = None, backend: str | None = None
):
    return dk_targeting_result(
        distribution, rng=rng, max_attempts=max_attempts, backend=backend
    )


register_generator(
    GeneratorSpec(
        name="rewiring",
        description="dK-preserving randomizing rewiring of the original graph "
        "(the paper's preferred approach, Section 4.1.4)",
        supported_d=frozenset({0, 1, 2, 3}),
        input_kind="graph",
        builder=_build_rewiring,
        accepts_backend=True,
    )
)
register_generator(
    GeneratorSpec(
        name="stochastic",
        description="expected-distribution stochastic construction "
        "(Erdős–Rényi / Chung–Lu / degree-class block model, Section 4.1.1)",
        supported_d=frozenset({0, 1, 2}),
        input_kind="distribution",
        builder=_build_stochastic,
    )
)
register_generator(
    GeneratorSpec(
        name="pseudograph",
        description="configuration-model pseudograph construction with "
        "erased self-loops/multi-edges (Section 4.1.2)",
        supported_d=frozenset({1, 2}),
        input_kind="distribution",
        builder=_build_pseudograph,
    )
)
register_generator(
    GeneratorSpec(
        name="matching",
        description="stub-matching construction with backtracking repair "
        "(Section 4.1.3)",
        supported_d=frozenset({1, 2}),
        input_kind="distribution",
        builder=_build_matching,
    )
)
register_generator(
    GeneratorSpec(
        name="targeting",
        description="dK-targeting d'K-preserving Metropolis rewiring from a "
        "bare dK-distribution (Section 4.1.4)",
        supported_d=frozenset({2, 3}),
        input_kind="distribution",
        builder=_build_targeting,
        accepts_backend=True,
    )
)


# --------------------------------------------------------------------------- #
# Non-dK baselines (reference scenarios for Fig. 5-style comparisons)
# --------------------------------------------------------------------------- #
def _build_erdos_renyi(graph, d, rng):
    return erdos_renyi_like(graph, rng=rng), {"baseline": "erdos_renyi", "ignored_d": d}


def _build_barabasi_albert(graph, d, rng):
    return barabasi_albert_like(graph, rng=rng), {"baseline": "barabasi_albert", "ignored_d": d}


register_generator(
    GeneratorSpec(
        name="erdos-renyi",
        description="uniform G(n, m) baseline matching only the size of the "
        "original (the dK level is ignored)",
        supported_d=frozenset({0, 1, 2, 3}),
        input_kind="graph",
        builder=_build_erdos_renyi,
    )
)
register_generator(
    GeneratorSpec(
        name="barabasi-albert",
        description="Barabási–Albert preferential-attachment baseline sized "
        "like the original (the dK level is ignored)",
        supported_d=frozenset({0, 1, 2, 3}),
        input_kind="graph",
        builder=_build_barabasi_albert,
    )
)


__all__ = [
    "InputKind",
    "GenerationResult",
    "GeneratorSpec",
    "GeneratorInputError",
    "UnknownGeneratorError",
    "UnsupportedLevelError",
    "register_generator",
    "unregister_generator",
    "get_generator",
    "available_generators",
    "json_safe",
]
