"""Stable cache keys for the artifact store.

Every store entry is addressed by the SHA-256 of a canonical JSON rendering
of what produced it, so the keys are stable across processes, Python
versions and dict orderings:

* generated graphs: ``(generator name, d, params, seed, source graph hash,
  code version)`` — :func:`generation_key`;
* metric results: ``(graph content hash, metric name, metric params, code
  version)`` — :func:`metric_key`;
* experiment cells: computed in :mod:`repro.experiment` from the cell
  coordinates plus the measurement options, via :func:`stable_hash`.

The code version (:func:`code_version`) folds the package version and the
store schema into every key, so upgrading either silently invalidates stale
entries instead of serving results computed by old code.

Execution knobs never enter keys: the kernel/rewiring ``backend`` (and the
vectorized engine's batch size) select *how* a result is computed, not what
it is — metric values are bit-identical across backends, and generated
graphs are per-seed deterministic and invariant-exact on every engine — so
entries are shared across backends in both directions.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.generators.registry import json_safe

#: Bump when the on-disk layout or key derivation changes incompatibly.
STORE_SCHEMA_VERSION = 1


def code_version() -> str:
    """Version string folded into every cache key (package + store schema)."""
    import repro  # deferred: repro/__init__ imports modules that import us

    return f"{repro.__version__}+store{STORE_SCHEMA_VERSION}"


def stable_hash(payload: Any) -> str:
    """SHA-256 of the canonical JSON form of ``payload``.

    ``payload`` may contain numpy scalars/arrays, sets and tuples; they are
    coerced with :func:`repro.generators.registry.json_safe` first, and any
    remaining exotic object falls back to its ``repr`` — attaching a store
    must never make a spec unhashable that runs fine eagerly.  Dict ordering
    does not affect the digest.
    """
    canonical = json.dumps(
        json_safe(payload), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def generation_key(
    method: str,
    params: Mapping[str, Any],
    seed: int | None,
    source_hash: str,
    *,
    d: int | None = None,
    version: str | None = None,
) -> str:
    """Content key of a generated graph.

    ``source_hash`` is the content hash of the original topology the
    generator consumed (its dK-distribution is derived from it, so hashing
    the graph covers the distribution too).
    """
    return stable_hash(
        {
            "kind": "generated-graph",
            "code_version": version or code_version(),
            "method": method,
            "d": d,
            "params": dict(params),
            "seed": seed,
            "source": source_hash,
        }
    )


def metric_key(
    graph_hash: str,
    metric_name: str,
    metric_params: Mapping[str, Any],
    *,
    version: str | None = None,
) -> str:
    """Content key of a metric result computed on the graph ``graph_hash``."""
    return stable_hash(
        {
            "kind": "metric",
            "code_version": version or code_version(),
            "graph": graph_hash,
            "metric": metric_name,
            "params": dict(metric_params),
        }
    )


__all__ = [
    "STORE_SCHEMA_VERSION",
    "code_version",
    "stable_hash",
    "generation_key",
    "metric_key",
]
