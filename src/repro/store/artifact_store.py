"""Content-addressed on-disk store for graphs, metrics and experiment cells.

Layout under the store root::

    store.json                      # schema marker
    graphs/<k[:2]>/<k>/             # graph artifact dirs (payload + manifest)
    biggraphs/<k[:2]>/<k>/          # memory-mapped BigGraph artifact dirs
    metrics/<k[:2]>/<k>.json        # memoized metric results
    cells/<k[:2]>/<k>.json          # per-cell experiment manifests

where ``<k>`` is the SHA-256 key from :mod:`repro.store.keys`.  Entries are
immutable: a key fully determines its content, so concurrent writers (the
``ProcessPoolExecutor`` path of :func:`repro.experiment.run_experiment`)
need no locking — every write goes to a unique temporary name in the same
directory and is published with an atomic :func:`os.replace`; whichever
writer loses the race simply discards its copy.

Maintenance is exposed as :meth:`ArtifactStore.info`,
:meth:`ArtifactStore.gc` (drop entries from other code versions, orphaned
metric/cell entries and stale temporaries) and
:meth:`ArtifactStore.clear`, mirrored by the ``repro cache`` CLI.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
import zlib
from pathlib import Path
from typing import Any, Iterator, Union

from repro.exceptions import GraphError, StoreError
from repro.graph.simple_graph import SimpleGraph
from repro.store.keys import STORE_SCHEMA_VERSION, code_version
from repro.store.serialize import read_graph_artifact, write_graph_artifact
from repro.telemetry.metrics import counter_inc, counter_value

PathLike = Union[str, Path]

_MARKER_NAME = "store.json"
_CATEGORIES = ("graphs", "biggraphs", "metrics", "cells")

#: Categories stored as artifact *directories* (vs single JSON files).
_DIR_CATEGORIES = ("graphs", "biggraphs")


def _shard(category_dir: Path, key: str) -> Path:
    return category_dir / key[:2]


class ArtifactStore:
    """A content-addressed artifact store rooted at a directory.

    Parameters
    ----------
    root:
        Store directory; created (with a ``store.json`` schema marker) if it
        does not exist yet.
    compress:
        Gzip graph payloads (on by default; plain text when false).
    """

    def __init__(self, root: PathLike, *, compress: bool = True):
        self.root = Path(root)
        self.compress = compress
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / _MARKER_NAME
        if marker.exists():
            schema = json.loads(marker.read_text()).get("schema")
            if schema != STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store at {self.root} has schema {schema}, "
                    f"this code expects {STORE_SCHEMA_VERSION} "
                    "(run `repro cache clear` or point at a fresh directory)"
                )
        else:
            self._write_json_atomic(
                marker, {"schema": STORE_SCHEMA_VERSION, "created_by": code_version()}
            )

    @classmethod
    def coerce(cls, store: "ArtifactStore | PathLike | None") -> "ArtifactStore | None":
        """Accept an existing store, a directory path, or ``None``."""
        if store is None or isinstance(store, ArtifactStore):
            return store
        return cls(store)

    # ------------------------------------------------------------------ #
    # low-level atomic writers
    # ------------------------------------------------------------------ #
    def _tmp_name(self, final: Path) -> Path:
        return final.parent / f".{final.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"

    def _write_json_atomic(self, path: Path, payload: dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_name(path)
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def _json_path(self, category: str, key: str) -> Path:
        return _shard(self.root / category, key) / f"{key}.json"

    def _put_json(self, category: str, key: str, payload: dict[str, Any]) -> None:
        self._write_json_atomic(self._json_path(category, key), payload)

    def _get_json(self, category: str, key: str) -> dict[str, Any] | None:
        path = self._json_path(category, key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # torn entry: treat as a miss, it will be rewritten

    def _iter_json(self, category: str) -> Iterator[tuple[str, Path]]:
        base = self.root / category
        if not base.exists():
            return
        for path in sorted(base.glob("*/*.json")):
            yield path.stem, path

    # ------------------------------------------------------------------ #
    # graphs
    # ------------------------------------------------------------------ #
    def _graph_dir(self, key: str) -> Path:
        return _shard(self.root / "graphs", key) / key

    def has_graph(self, key: str) -> bool:
        """Whether a graph artifact exists for ``key``."""
        return self._graph_dir(key).is_dir()

    def put_graph(
        self, key: str, graph: SimpleGraph, *, metadata: dict[str, Any] | None = None
    ) -> dict[str, Any] | None:
        """Store ``graph`` under ``key``; returns the manifest it wrote.

        A no-op returning ``None`` when the key is already present (the
        existing entry has identical content, by construction).
        """
        final = self._graph_dir(key)
        if final.is_dir():
            return None
        tmp = self._tmp_name(final)
        manifest = write_graph_artifact(tmp, graph, metadata=metadata, compress=self.compress)
        try:
            os.replace(tmp, final)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)  # lost the race: keep the winner
            if not final.is_dir():
                raise
        counter_inc("repro_store_writes_total", category="graphs")
        counter_inc(
            "repro_store_write_bytes_total",
            sum(child.stat().st_size for child in final.iterdir() if child.is_file()),
            category="graphs",
        )
        return manifest

    def get_graph(self, key: str) -> tuple[SimpleGraph, dict[str, Any]] | None:
        """Load ``(graph, manifest)`` for ``key``, or ``None`` on a miss."""
        directory = self._graph_dir(key)
        if not directory.is_dir():
            counter_inc("repro_store_reads_total", category="graphs", outcome="miss")
            return None
        try:
            loaded = read_graph_artifact(directory)
        except (StoreError, GraphError, OSError, ValueError, EOFError, zlib.error):
            loaded = None  # corrupt entry (bad payload, manifest, or gzip): miss
        counter_inc(
            "repro_store_reads_total",
            category="graphs",
            outcome="hit" if loaded is not None else "miss",
        )
        return loaded

    # ------------------------------------------------------------------ #
    # biggraphs (memory-mapped CSR artifacts of the million-node tier)
    # ------------------------------------------------------------------ #
    def _biggraph_dir(self, key: str) -> Path:
        return _shard(self.root / "biggraphs", key) / key

    def has_biggraph(self, key: str) -> bool:
        """Whether a BigGraph artifact exists for ``key``."""
        return self._biggraph_dir(key).is_dir()

    def biggraph_path(self, key: str) -> Path | None:
        """The artifact directory of ``key`` (for direct mmap), or ``None``."""
        directory = self._biggraph_dir(key)
        return directory if directory.is_dir() else None

    def put_biggraph(
        self,
        key: str,
        graph,
        *,
        encoding: str = "raw",
        metadata: dict[str, Any] | None = None,
    ) -> dict[str, Any] | None:
        """Store a :class:`~repro.kernels.biggraph.BigGraph` under ``key``.

        Same atomic-publish and lost-race semantics as :meth:`put_graph`.
        Returns the artifact meta dict, or ``None`` when the key was already
        present.
        """
        from repro.graph.mmap_io import write_biggraph_artifact

        final = self._biggraph_dir(key)
        if final.is_dir():
            return None
        tmp = self._tmp_name(final)
        meta = write_biggraph_artifact(tmp, graph, encoding=encoding, metadata=metadata)
        try:
            os.replace(tmp, final)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)  # lost the race: keep the winner
            if not final.is_dir():
                raise
        counter_inc("repro_store_writes_total", category="biggraphs")
        counter_inc(
            "repro_store_write_bytes_total",
            sum(child.stat().st_size for child in final.iterdir() if child.is_file()),
            category="biggraphs",
        )
        return meta

    def get_biggraph(self, key: str):
        """Memory-map the BigGraph stored under ``key`` (``None`` on a miss)."""
        from repro.graph.mmap_io import load_biggraph

        directory = self._biggraph_dir(key)
        if not directory.is_dir():
            counter_inc("repro_store_reads_total", category="biggraphs", outcome="miss")
            return None
        try:
            loaded = load_biggraph(directory)
        except (StoreError, OSError, ValueError, EOFError, zlib.error):
            loaded = None  # corrupt entry: miss
        counter_inc(
            "repro_store_reads_total",
            category="biggraphs",
            outcome="hit" if loaded is not None else "miss",
        )
        return loaded

    # ------------------------------------------------------------------ #
    # metrics and experiment cells
    # ------------------------------------------------------------------ #
    def put_metric(self, key: str, payload: dict[str, Any]) -> None:
        """Store a metric-result payload under ``key``."""
        self._put_json_counted("metrics", key, payload)

    def get_metric(self, key: str) -> dict[str, Any] | None:
        """Load a metric-result payload, or ``None`` on a miss."""
        return self._get_json_counted("metrics", key)

    def put_cell(self, key: str, payload: dict[str, Any]) -> None:
        """Store a per-cell experiment manifest under ``key``."""
        self._put_json_counted("cells", key, payload)

    def get_cell(self, key: str) -> dict[str, Any] | None:
        """Load a per-cell experiment manifest, or ``None`` on a miss."""
        return self._get_json_counted("cells", key)

    def _put_json_counted(self, category: str, key: str, payload: dict[str, Any]) -> None:
        self._put_json(category, key, payload)
        counter_inc("repro_store_writes_total", category=category)
        try:
            size = self._json_path(category, key).stat().st_size
        except OSError:
            size = 0
        counter_inc("repro_store_write_bytes_total", size, category=category)

    def _get_json_counted(self, category: str, key: str) -> dict[str, Any] | None:
        payload = self._get_json(category, key)
        counter_inc(
            "repro_store_reads_total",
            category=category,
            outcome="hit" if payload is not None else "miss",
        )
        return payload

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def info_dict(self) -> dict[str, Any]:
        """Machine-readable store summary: location, schema, code version,
        entry counts and total payload bytes per category.

        This is the single source for both ``repro cache info --json`` and
        the topology service's ``GET /v1/store/info``, so tooling never has
        to parse the human-oriented table.
        """
        counts: dict[str, Any] = {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "code_version": code_version(),
            "compress": self.compress,
        }
        category_bytes: dict[str, int] = {}
        for category in _DIR_CATEGORIES:
            count = 0
            size = 0
            base = self.root / category
            if base.exists():
                for artifact in base.glob("*/*"):
                    if artifact.is_dir() and not artifact.name.endswith(".tmp"):
                        count += 1
                        size += sum(
                            child.stat().st_size
                            for child in artifact.iterdir()
                            if child.is_file()
                        )
            counts[category] = count
            category_bytes[category] = size
        for category in ("metrics", "cells"):
            entries = list(self._iter_json(category))
            counts[category] = len(entries)
            category_bytes[category] = sum(path.stat().st_size for _, path in entries)
        counts["category_bytes"] = category_bytes
        counts["total_bytes"] = sum(category_bytes.values())
        return counts

    def info(self) -> dict[str, Any]:
        """Alias of :meth:`info_dict` (the historical name)."""
        return self.info_dict()

    #: Temporaries younger than this are presumed to belong to a live writer.
    GC_TMP_AGE_SECONDS = 3600.0

    def gc(self) -> dict[str, int]:
        """Drop stale entries; returns removal counts per category.

        Removed: abandoned temporaries (older than
        :attr:`GC_TMP_AGE_SECONDS`, so concurrent writers are left alone),
        entries written by a different code version, and cell manifests
        whose referenced graph artifact no longer exists.  Metric entries
        are version-checked only — they are keyed by graph *content* hash,
        which stays meaningful even when no artifact stores that graph
        (e.g. metrics of an original topology).
        """
        current = code_version()
        removed = {"graphs": 0, "biggraphs": 0, "metrics": 0, "cells": 0, "tmp": 0}

        cutoff = time.time() - self.GC_TMP_AGE_SECONDS
        for tmp in self.root.glob("*/*/.*.tmp"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue  # a live writer may still publish this
            except OSError:
                continue  # vanished mid-scan: the writer finished
            if tmp.is_dir():
                shutil.rmtree(tmp, ignore_errors=True)
            else:
                tmp.unlink(missing_ok=True)
            removed["tmp"] += 1

        graphs = self.root / "graphs"
        live_graphs: set[str] = set()
        if graphs.exists():
            for artifact in sorted(graphs.glob("*/*")):
                if not artifact.is_dir():
                    continue
                try:
                    manifest = json.loads((artifact / "manifest.json").read_text())
                    stale = manifest["metadata"].get("code_version") not in (None, current)
                except (OSError, json.JSONDecodeError, KeyError):
                    stale = True  # unreadable manifest: corrupt artifact
                if stale:
                    shutil.rmtree(artifact, ignore_errors=True)
                    removed["graphs"] += 1
                else:
                    live_graphs.add(artifact.name)

        biggraphs = self.root / "biggraphs"
        if biggraphs.exists():
            for artifact in sorted(biggraphs.glob("*/*")):
                if not artifact.is_dir():
                    continue
                try:
                    meta = json.loads((artifact / "meta.json").read_text())
                    stale = meta["metadata"].get("code_version") not in (None, current)
                except (OSError, json.JSONDecodeError, KeyError):
                    stale = True  # unreadable meta: corrupt artifact
                if stale:
                    shutil.rmtree(artifact, ignore_errors=True)
                    removed["biggraphs"] += 1

        for category in ("metrics", "cells"):
            for key, path in self._iter_json(category):
                payload = self._get_json(category, key)
                stale = payload is None or payload.get("code_version") != current
                if not stale:
                    graph_key = payload.get("graph_key")
                    stale = graph_key is not None and graph_key not in live_graphs
                if stale:
                    path.unlink(missing_ok=True)
                    removed[category] += 1
        return removed

    def clear(self) -> None:
        """Remove every entry (the store directory itself is kept)."""
        for category in _CATEGORIES:
            shutil.rmtree(self.root / category, ignore_errors=True)

    @classmethod
    def wipe(cls, root: PathLike) -> None:
        """Remove every entry *and* the schema marker of the store at ``root``.

        Unlike :meth:`clear` this needs no :class:`ArtifactStore` instance,
        so it also resets stores whose schema no longer matches (the case
        where the constructor refuses to open them).
        """
        root = Path(root)
        for category in _CATEGORIES:
            shutil.rmtree(root / category, ignore_errors=True)
        (root / _MARKER_NAME).unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r}, compress={self.compress})"


def store_process_counters() -> dict[str, Any]:
    """Store hit/miss/write counters accumulated *by this process*.

    Telemetry counters are process-global (not per-store-instance, and not
    persisted on disk), so this reports the activity of the current process
    against whichever stores it touched.  Shape::

        {"reads": {"graphs": {"hit": 3, "miss": 1}, ...},
         "writes": {"graphs": 1, ...},
         "write_bytes": {"graphs": 15234, ...}}
    """
    reads: dict[str, dict[str, int]] = {}
    writes: dict[str, int] = {}
    write_bytes: dict[str, int] = {}
    for category in _CATEGORIES:
        reads[category] = {
            outcome: int(
                counter_value("repro_store_reads_total", category=category, outcome=outcome)
            )
            for outcome in ("hit", "miss")
        }
        writes[category] = int(counter_value("repro_store_writes_total", category=category))
        write_bytes[category] = int(
            counter_value("repro_store_write_bytes_total", category=category)
        )
    return {"reads": reads, "writes": writes, "write_bytes": write_bytes}


__all__ = ["ArtifactStore", "store_process_counters"]
