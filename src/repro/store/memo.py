"""Memoized generation and metrics on top of the artifact store.

Two facades that keep the eager APIs' signatures but read/write an
:class:`~repro.store.artifact_store.ArtifactStore` transparently:

* :func:`memoized_build` wraps :meth:`GeneratorSpec.build
  <repro.generators.registry.GeneratorSpec.build>`: the generated graph is
  keyed by ``(generator name, params, seed, source graph hash, code
  version)``, so the same construction is never run twice — across
  processes, sessions or experiment grids.
* :func:`memoized_summarize` wraps :func:`repro.metrics.summary.summarize`:
  the scalar-metric block is keyed by ``(graph content hash, metric params,
  code version)``, so re-measuring an identical graph (e.g. the same
  original topology in every grid) is a store read.

Both degrade to the eager computation when ``store`` is ``None``.  Note the
one caveat of memoizing sampled metrics: when ``distance_sources`` is set,
the cached value reflects the BFS sample of whichever run computed it first
(the ``rng`` cannot be part of the key); exact metrics — the default — are
unaffected.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.generators.registry import GenerationResult, GeneratorSpec, json_safe
from repro.graph.simple_graph import SimpleGraph
from repro.metrics.summary import ScalarMetrics, summarize
from repro.store.artifact_store import ArtifactStore
from repro.store.keys import code_version, generation_key, metric_key
from repro.store.serialize import graph_content_hash
from repro.utils.rng import RngLike

#: Metric name under which the Table-2 scalar block is stored.
SCALAR_SUMMARY_METRIC = "scalar_summary"


def memoized_build(
    spec: GeneratorSpec,
    original: SimpleGraph,
    d: int,
    *,
    seed: int,
    store: ArtifactStore | None,
    options: Mapping[str, Any] | None = None,
    source_hash: str | None = None,
    read: bool = True,
) -> GenerationResult:
    """Build (or load) the ``(spec, d, options, seed)`` graph for ``original``.

    On a store hit the :class:`GenerationResult` is reconstructed from the
    artifact manifest — including the stats and the *original* construction
    wall time — and no generator code runs.  ``read=False`` skips the lookup
    (forced recomputation) while still writing the result.
    """
    options = dict(options or {})
    if store is None:
        return spec.build(original, d, rng=seed, **options)
    if source_hash is None:
        source_hash = graph_content_hash(original)
    key = generation_key(spec.name, options, seed, source_hash, d=d)
    cached = store.get_graph(key) if read else None
    if cached is not None:
        graph, manifest = cached
        metadata = manifest.get("metadata", {})
        return GenerationResult(
            graph=graph,
            method=spec.name,
            d=d,
            seed=seed,
            wall_time=float(metadata.get("wall_time", 0.0)),
            stats=dict(metadata.get("stats", {})),
            content_hash=manifest.get("content_hash"),
        )
    result = spec.build(original, d, rng=seed, **options)
    manifest = store.put_graph(
        key,
        result.graph,
        metadata={
            "code_version": code_version(),
            "method": spec.name,
            "d": d,
            "params": json_safe(options),
            "seed": seed,
            "source": source_hash,
            "wall_time": float(result.wall_time),
            "stats": json_safe(result.stats),
        },
    )
    # reuse the hash put_graph computed while serializing; only a lost write
    # race (manifest None) needs its own canonicalization pass
    content_hash = (
        manifest["content_hash"] if manifest else graph_content_hash(result.graph)
    )
    return GenerationResult(
        graph=result.graph,
        method=result.method,
        d=result.d,
        seed=result.seed,
        wall_time=result.wall_time,
        stats=result.stats,
        content_hash=content_hash,
    )


def memoized_summarize(
    graph: SimpleGraph,
    store: ArtifactStore | None,
    *,
    graph_hash: str | None = None,
    use_giant_component: bool = True,
    distance_sources: int | None = None,
    compute_spectrum: bool = True,
    rng: RngLike = None,
    read: bool = True,
    backend: str | None = None,
) -> ScalarMetrics:
    """Compute (or load) the scalar-metric summary of ``graph``.

    ``graph_hash`` may be supplied when the caller already knows the content
    hash (saves re-canonicalizing the graph).  ``read=False`` skips the
    lookup (forced recomputation) while still writing the result.

    ``backend`` selects the kernel backend for the computation only: both
    backends produce bit-identical summaries, so it is deliberately **not**
    part of the cache key — a summary computed with CSR kernels is served to
    pure-Python runs and vice versa.
    """
    if store is None:
        return summarize(
            graph,
            use_giant_component=use_giant_component,
            distance_sources=distance_sources,
            compute_spectrum=compute_spectrum,
            rng=rng,
            backend=backend,
        )
    if graph_hash is None:
        graph_hash = graph_content_hash(graph)
    params = {
        "use_giant_component": use_giant_component,
        "distance_sources": distance_sources,
        "compute_spectrum": compute_spectrum,
    }
    key = metric_key(graph_hash, SCALAR_SUMMARY_METRIC, params)
    cached = store.get_metric(key) if read else None
    if cached is not None:
        return ScalarMetrics(**cached["value"])
    result = summarize(
        graph,
        use_giant_component=use_giant_component,
        distance_sources=distance_sources,
        compute_spectrum=compute_spectrum,
        rng=rng,
        backend=backend,
    )
    store.put_metric(
        key,
        {
            "code_version": code_version(),
            "graph": graph_hash,
            "metric": SCALAR_SUMMARY_METRIC,
            "params": params,
            "value": json_safe(result.as_dict()),
        },
    )
    return result


__all__ = ["SCALAR_SUMMARY_METRIC", "memoized_build", "memoized_summarize"]
