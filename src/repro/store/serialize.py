"""Canonical graph serialization for the artifact store.

Content addressing only works when equal graphs serialize to equal bytes, so
this module defines *one* canonical byte form layered on the plain edge-list
format of :mod:`repro.graph.io`:

* a header line ``repro-graph <version> <n> <m>``,
* followed by the ``m`` edges as ``u v`` lines with ``u <= v``, sorted
  lexicographically.

The byte form is therefore independent of the order in which nodes and edges
were inserted into the :class:`~repro.graph.simple_graph.SimpleGraph` (it is
*not* isomorphism-invariant: relabelling nodes changes the bytes, as it
changes the graph).  :func:`graph_content_hash` is the SHA-256 of the
canonical bytes and is the identity of a graph everywhere in the store.

On disk an artifact is a directory holding the (optionally gzip-compressed)
edge payload plus a small ``manifest.json`` with the sizes, the content hash
and caller-supplied metadata; see :func:`write_graph_artifact` /
:func:`read_graph_artifact`.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import Any, Union

from repro.exceptions import GraphError, StoreError
from repro.graph.simple_graph import SimpleGraph

PathLike = Union[str, Path]

#: Format tag and version written into the canonical header line.
FORMAT_NAME = "repro-graph"
FORMAT_VERSION = 1

_GZIP_MAGIC = b"\x1f\x8b"

MANIFEST_NAME = "manifest.json"
EDGES_NAME = "graph.edges"
EDGES_GZ_NAME = "graph.edges.gz"


def canonical_bytes(graph: SimpleGraph) -> bytes:
    """Uncompressed canonical byte form of ``graph`` (header + sorted edges)."""
    lines = [f"{FORMAT_NAME} {FORMAT_VERSION} {graph.number_of_nodes} {graph.number_of_edges}"]
    lines.extend(f"{u} {v}" for u, v in sorted(graph.edges()))
    return ("\n".join(lines) + "\n").encode("ascii")


def graph_to_bytes(graph: SimpleGraph, *, compress: bool = True) -> bytes:
    """Serialize ``graph`` canonically, gzip-compressed unless ``compress=False``.

    Compression is deterministic (``mtime=0``), so equal graphs produce equal
    compressed bytes as well.
    """
    raw = canonical_bytes(graph)
    if compress:
        return gzip.compress(raw, mtime=0)
    return raw


def graph_from_bytes(data: bytes) -> SimpleGraph:
    """Deserialize bytes produced by :func:`graph_to_bytes` (either flavour).

    The gzip layer is auto-detected from the magic number.  Malformed
    payloads — bad header, size mismatches, self-loops — raise
    :class:`~repro.exceptions.GraphError`.
    """
    if data[:2] == _GZIP_MAGIC:
        data = gzip.decompress(data)
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError as error:
        raise GraphError(f"graph payload is not ascii: {error}") from None
    lines = text.splitlines()
    if not lines:
        raise GraphError("empty graph payload")
    header = lines[0].split()
    if len(header) != 4 or header[0] != FORMAT_NAME:
        raise GraphError(f"malformed graph header: {lines[0]!r}")
    if int(header[1]) != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version {header[1]} (expected {FORMAT_VERSION})"
        )
    n, m = int(header[2]), int(header[3])
    graph = SimpleGraph(n)
    edge_lines = [line for line in lines[1:] if line.strip()]
    if len(edge_lines) != m:
        raise GraphError(f"graph payload announces {m} edges but carries {len(edge_lines)}")
    for line in edge_lines:
        fields = line.split()
        if len(fields) != 2:
            raise GraphError(f"malformed edge line: {line!r}")
        graph.add_edge(int(fields[0]), int(fields[1]))
    return graph


def graph_content_hash(graph: SimpleGraph) -> str:
    """SHA-256 hex digest of the canonical byte form of ``graph``.

    Stable across node/edge insertion order; this is the graph's identity in
    the artifact store (metric results are keyed by it).
    """
    return hashlib.sha256(canonical_bytes(graph)).hexdigest()


def write_graph_artifact(
    directory: PathLike,
    graph: SimpleGraph,
    *,
    metadata: dict[str, Any] | None = None,
    compress: bool = True,
) -> dict[str, Any]:
    """Write ``graph`` + manifest into ``directory``; returns the manifest.

    The directory is created if needed.  The manifest records the format
    version, sizes, the content hash and the caller's ``metadata`` block.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    raw = canonical_bytes(graph)
    payload_name = EDGES_GZ_NAME if compress else EDGES_NAME
    payload = gzip.compress(raw, mtime=0) if compress else raw
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "nodes": graph.number_of_nodes,
        "edges": graph.number_of_edges,
        "content_hash": hashlib.sha256(raw).hexdigest(),
        "payload": payload_name,
        "metadata": metadata or {},
    }
    (directory / payload_name).write_bytes(payload)
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, sort_keys=True, indent=1))
    return manifest


def read_graph_artifact(
    directory: PathLike, *, verify: bool = False
) -> tuple[SimpleGraph, dict[str, Any]]:
    """Read a graph artifact directory back into ``(graph, manifest)``.

    ``verify=True`` recomputes the content hash and raises
    :class:`~repro.exceptions.StoreError` on mismatch (payload corruption).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StoreError(f"{directory} is not a graph artifact (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text())
    payload_path = directory / manifest.get("payload", EDGES_GZ_NAME)
    if not payload_path.exists():
        raise StoreError(f"graph artifact {directory} is missing its payload {payload_path.name}")
    graph = graph_from_bytes(payload_path.read_bytes())
    if verify:
        actual = graph_content_hash(graph)
        if actual != manifest.get("content_hash"):
            raise StoreError(
                f"graph artifact {directory} is corrupt: "
                f"content hash {actual} != manifest {manifest.get('content_hash')}"
            )
    return graph, manifest


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "EDGES_NAME",
    "EDGES_GZ_NAME",
    "canonical_bytes",
    "graph_to_bytes",
    "graph_from_bytes",
    "graph_content_hash",
    "write_graph_artifact",
    "read_graph_artifact",
]
