"""Persistence and caching: content-addressed artifacts, memoized metrics.

The store subsystem lets the heavy parts of the dK-series pipeline —
generating topologies and computing their metrics — run at most once per
content key:

* :mod:`repro.store.serialize` — canonical (order-independent) graph bytes,
  gzip framing, artifact directories, :func:`graph_content_hash`;
* :mod:`repro.store.keys` — stable SHA-256 cache keys folding in the code
  version;
* :mod:`repro.store.artifact_store` — :class:`ArtifactStore`, the on-disk
  content-addressed store with atomic, lock-free concurrent writes;
* :mod:`repro.store.memo` — :func:`memoized_build` /
  :func:`memoized_measure` / :func:`memoized_summarize` facades over the
  generator registry and the measurement planner, with metric-granular
  cache entries (widening a measured metric set computes only the new
  metrics).

:func:`repro.experiment.run_experiment` accepts ``store=`` / ``resume=`` to
persist per-cell manifests and skip completed cells; the ``repro`` CLI
exposes the same via ``run-experiment --store DIR --resume`` and the
``cache {info,gc,clear}`` maintenance commands.
"""

from repro.store.artifact_store import ArtifactStore
from repro.store.keys import code_version, generation_key, metric_key, stable_hash
from repro.store.memo import (
    measure_entry_keys,
    memoized_build,
    memoized_measure,
    memoized_summarize,
)
from repro.store.serialize import (
    graph_content_hash,
    graph_from_bytes,
    graph_to_bytes,
    read_graph_artifact,
    write_graph_artifact,
)

__all__ = [
    "ArtifactStore",
    "code_version",
    "generation_key",
    "metric_key",
    "stable_hash",
    "measure_entry_keys",
    "memoized_build",
    "memoized_measure",
    "memoized_summarize",
    "graph_content_hash",
    "graph_from_bytes",
    "graph_to_bytes",
    "read_graph_artifact",
    "write_graph_artifact",
]
