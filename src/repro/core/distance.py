"""dK distances ``D_d`` between graphs or between dK-distributions.

The paper's targeting rewiring accepts a rewiring step only if it decreases
the distance to the target dK-distribution, measured as the sum of squared
differences between current and target subgraph counts (Section 4.1.4):

* ``D_1`` -- squared differences of per-degree node counts,
* ``D_2 = Σ_{k1,k2} [m_current(k1,k2) - m_target(k1,k2)]²``,
* ``D_3`` -- the same sum over wedge *and* triangle counts.

``D_0`` is defined for completeness as the squared difference of edge counts.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
    ThreeKDistribution,
)
from repro.core.extraction import dk_distribution
from repro.graph.simple_graph import SimpleGraph

Distribution = Union[
    AverageDegree, DegreeDistribution, JointDegreeDistribution, ThreeKDistribution
]


def _sum_squared_count_differences(a: Mapping, b: Mapping) -> float:
    keys = set(a) | set(b)
    return float(sum((a.get(key, 0) - b.get(key, 0)) ** 2 for key in keys))


def distance_0k(a: AverageDegree, b: AverageDegree) -> float:
    """``D_0``: squared difference of edge counts."""
    return float((a.edges - b.edges) ** 2)


def distance_1k(a: DegreeDistribution, b: DegreeDistribution) -> float:
    """``D_1``: sum of squared differences of per-degree node counts."""
    return _sum_squared_count_differences(a.counts, b.counts)


def distance_2k(a: JointDegreeDistribution, b: JointDegreeDistribution) -> float:
    """``D_2``: sum of squared differences of JDD edge counts."""
    return _sum_squared_count_differences(a.counts, b.counts)


def distance_3k(a: ThreeKDistribution, b: ThreeKDistribution) -> float:
    """``D_3``: squared differences of wedge counts plus triangle counts."""
    return _sum_squared_count_differences(a.wedges, b.wedges) + _sum_squared_count_differences(
        a.triangles, b.triangles
    )


def dk_distance(a: Distribution, b: Distribution) -> float:
    """Dispatch to the appropriate ``D_d`` based on the distribution types."""
    if isinstance(a, AverageDegree) and isinstance(b, AverageDegree):
        return distance_0k(a, b)
    if isinstance(a, DegreeDistribution) and isinstance(b, DegreeDistribution):
        return distance_1k(a, b)
    if isinstance(a, JointDegreeDistribution) and isinstance(b, JointDegreeDistribution):
        return distance_2k(a, b)
    if isinstance(a, ThreeKDistribution) and isinstance(b, ThreeKDistribution):
        return distance_3k(a, b)
    raise TypeError(
        f"cannot compute a dK distance between {type(a).__name__} and {type(b).__name__}"
    )


def graph_dk_distance(graph_a: SimpleGraph, graph_b: SimpleGraph, d: int) -> float:
    """``D_d`` between the dK-distributions of two graphs."""
    return dk_distance(dk_distribution(graph_a, d), dk_distribution(graph_b, d))


__all__ = [
    "distance_0k",
    "distance_1k",
    "distance_2k",
    "distance_3k",
    "dk_distance",
    "graph_dk_distance",
]
