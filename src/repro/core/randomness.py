"""Front-end for producing dK-random graphs.

The paper distinguishes *dK-graphs* (any graph having property ``P_d``) from
*dK-random graphs* (the maximum-entropy ones that the constructing algorithms
actually produce).  This module provides a single entry point,
:func:`dk_random_graph`, that builds a dK-random counterpart of an input
graph using the recommended algorithm for each ``d``:

* ``d = 0, 1, 2, 3`` with an original graph available -> dK-randomizing
  rewiring (the paper's preferred approach, Section 5.1);
* ``method`` can force one of the alternative constructions (stochastic,
  pseudograph, matching, targeting) for comparison experiments.
"""

from __future__ import annotations

from typing import Literal

from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng

Method = Literal["rewiring", "stochastic", "pseudograph", "matching", "targeting"]


def dk_random_graph(
    original: SimpleGraph,
    d: int,
    *,
    method: Method = "rewiring",
    rng: RngLike = None,
    rewiring_multiplier: float = 10.0,
) -> SimpleGraph:
    """Construct a dK-random counterpart of ``original``.

    Parameters
    ----------
    original:
        The input graph whose dK-distribution must be reproduced.
    d:
        Level of the dK-series, 0 to 3.
    method:
        Construction algorithm.  ``"rewiring"`` (default) applies
        dK-preserving randomizing rewiring to a copy of the original graph;
        the other methods build the graph from the extracted distribution:
        ``"stochastic"`` (d <= 2), ``"pseudograph"`` (d in {1, 2}),
        ``"matching"`` (d in {1, 2}), ``"targeting"`` (d in {2, 3}).
    rng:
        Seed or generator for reproducibility.
    rewiring_multiplier:
        Number of accepted rewirings per possible initial rewiring (the paper
        uses 10).
    """
    # local imports keep repro.core free of an import cycle with repro.generators
    from repro.core.extraction import dk_distribution
    from repro.generators import matching, pseudograph, stochastic
    from repro.generators.rewiring.preserving import dk_randomize
    from repro.generators.rewiring.targeting import dk_targeting_construct

    rng = ensure_rng(rng)
    if d not in (0, 1, 2, 3):
        raise ValueError(f"d must be in 0..3, got {d}")

    if method == "rewiring":
        return dk_randomize(original, d, rng=rng, multiplier=rewiring_multiplier)

    if method == "stochastic":
        if d == 0:
            return stochastic.stochastic_0k(dk_distribution(original, 0), rng=rng)
        if d == 1:
            return stochastic.stochastic_1k(dk_distribution(original, 1), rng=rng)
        if d == 2:
            return stochastic.stochastic_2k(dk_distribution(original, 2), rng=rng)
        raise ValueError("the stochastic construction is only defined for d <= 2")

    if method == "pseudograph":
        if d == 1:
            return pseudograph.pseudograph_1k(dk_distribution(original, 1), rng=rng)
        if d == 2:
            return pseudograph.pseudograph_2k(dk_distribution(original, 2), rng=rng)
        raise ValueError("the pseudograph construction is only defined for d in {1, 2}")

    if method == "matching":
        if d == 1:
            return matching.matching_1k(dk_distribution(original, 1), rng=rng)
        if d == 2:
            return matching.matching_2k(dk_distribution(original, 2), rng=rng)
        raise ValueError("the matching construction is only defined for d in {1, 2}")

    if method == "targeting":
        if d in (2, 3):
            return dk_targeting_construct(dk_distribution(original, d), rng=rng)
        raise ValueError("the targeting construction is implemented for d in {2, 3}")

    raise ValueError(f"unknown method {method!r}")


__all__ = ["dk_random_graph", "Method"]
