"""Front-end for producing dK-random graphs.

The paper distinguishes *dK-graphs* (any graph having property ``P_d``) from
*dK-random graphs* (the maximum-entropy ones that the constructing algorithms
actually produce).  This module provides a single entry point,
:func:`dk_random_graph`, that builds a dK-random counterpart of an input
graph with any algorithm registered in
:mod:`repro.generators.registry`:

* ``method="rewiring"`` (default) applies dK-preserving randomizing rewiring
  to a copy of the original graph (the paper's preferred approach,
  Section 5.1);
* the other built-in methods (``stochastic``, ``pseudograph``, ``matching``,
  ``targeting``) build the graph from the extracted dK-distribution, and any
  custom method added with
  :func:`~repro.generators.registry.register_generator` is reachable here by
  name.
"""

from __future__ import annotations

from typing import Literal, overload

from repro.generators.registry import GenerationResult, get_generator
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike

Method = Literal["rewiring", "stochastic", "pseudograph", "matching", "targeting"]


@overload
def dk_random_graph(
    original: SimpleGraph,
    d: int,
    *,
    method: str = ...,
    rng: RngLike = ...,
    rewiring_multiplier: float = ...,
    backend: str | None = ...,
    return_result: Literal[False] = ...,
) -> SimpleGraph: ...


@overload
def dk_random_graph(
    original: SimpleGraph,
    d: int,
    *,
    method: str = ...,
    rng: RngLike = ...,
    rewiring_multiplier: float = ...,
    backend: str | None = ...,
    return_result: Literal[True],
) -> GenerationResult: ...


def dk_random_graph(
    original: SimpleGraph,
    d: int,
    *,
    method: str = "rewiring",
    rng: RngLike = None,
    rewiring_multiplier: float = 10.0,
    backend: str | None = None,
    return_result: bool = False,
) -> SimpleGraph | GenerationResult:
    """Construct a dK-random counterpart of ``original``.

    Parameters
    ----------
    original:
        The input graph whose dK-distribution must be reproduced.
    d:
        Level of the dK-series, 0 to 3.
    method:
        Name of a registered construction algorithm.  ``"rewiring"``
        (default) applies dK-preserving randomizing rewiring to a copy of the
        original graph; the other built-in methods build the graph from the
        extracted distribution: ``"stochastic"`` (d <= 2), ``"pseudograph"``
        (d in {1, 2}), ``"matching"`` (d in {1, 2}), ``"targeting"``
        (d in {2, 3}).
    rng:
        Seed or generator for reproducibility.
    rewiring_multiplier:
        Number of accepted rewirings per possible initial rewiring (the paper
        uses 10).  Only meaningful for ``method="rewiring"``.
    backend:
        Rewiring engine for the Markov-chain methods ("python", "csr" or
        "auto"; see :mod:`repro.kernels.backend`).  A pure execution knob:
        ignored by non-chain methods and never part of store cache keys.
    return_result:
        When true, return the full :class:`GenerationResult` provenance
        envelope (graph + method, d, seed, wall time, convergence stats)
        instead of the bare graph.
    """
    spec = get_generator(method)
    options = {"multiplier": rewiring_multiplier} if method == "rewiring" else {}
    result = spec.build(original, d, rng=rng, backend=backend, **options)
    return result if return_result else result.graph


__all__ = ["dk_random_graph", "Method"]
