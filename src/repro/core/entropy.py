"""Maximum-entropy predictions of Table 1 of the paper.

dK-random graphs are the *maximally random* graphs having property ``P_d``:
their ``(d+1)K``-distributions take specific maximum-entropy forms.

* 0K-random graphs (Erdős–Rényi) have a binomial ≈ Poisson degree
  distribution ``P_0K(k) = e^{-k̄} k̄^k / k!``.
* 1K-random graphs have the uncorrelated joint degree distribution
  ``P_1K(k1,k2) = k1 P(k1) k2 P(k2) / k̄²``.
* The stochastic edge-existence probabilities are
  ``p_0K = k̄/n``, ``p_1K(q1,q2) = q1 q2/(n q̄)`` and
  ``p_2K(q1,q2) = (q̄/n) P(q1,q2)/(P(q1) P(q2))``.

These closed forms are used both by the stochastic generators and by the
test-suite/benchmarks to verify that our dK-random graphs are indeed
maximally random with respect to the next level of the series.
"""

from __future__ import annotations

import math

from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
)


def poisson_degree_pmf(average_degree: float, max_degree: int) -> dict[int, float]:
    """``P_0K(k) = e^{-k̄} k̄^k / k!`` for ``k = 0 .. max_degree``."""
    if average_degree < 0:
        raise ValueError("average_degree must be non-negative")
    pmf = {}
    for k in range(max_degree + 1):
        pmf[k] = math.exp(-average_degree) * average_degree**k / math.factorial(k)
    return pmf


def maximum_entropy_degree_distribution(zero_k: AverageDegree, max_degree: int | None = None) -> dict[int, float]:
    """Expected degree distribution of 0K-random graphs built from ``zero_k``."""
    kbar = zero_k.average_degree
    if max_degree is None:
        max_degree = max(10, int(3 * kbar + 10))
    return poisson_degree_pmf(kbar, max_degree)


def maximum_entropy_jdd(one_k: DegreeDistribution) -> dict[tuple[int, int], float]:
    """Expected (normalized) JDD of 1K-random graphs.

    Returns ``P_1K(k1,k2) = k1 P(k1) k2 P(k2) / k̄²`` on canonical keys
    ``k1 <= k2``.  With the paper's µ convention this equals the probability
    that a randomly chosen *ordered* edge end pair carries degrees
    ``(k1, k2)``, so it is directly comparable to
    :meth:`JointDegreeDistribution.pmf` values.
    """
    kbar = one_k.average_degree()
    if kbar == 0:
        return {}
    pmf = one_k.pmf()
    result: dict[tuple[int, int], float] = {}
    degrees = sorted(pmf)
    for i, k1 in enumerate(degrees):
        for k2 in degrees[i:]:
            value = k1 * pmf[k1] * k2 * pmf[k2] / (kbar * kbar)
            if value > 0:
                result[(k1, k2)] = value
    return result


def expected_jdd_edge_counts(one_k: DegreeDistribution) -> dict[tuple[int, int], float]:
    """Expected edge counts ``m(k1,k2)`` in 1K-random graphs.

    Obtained from the maximum-entropy normalized JDD through
    ``m(k1,k2) = 2m P(k1,k2) / µ(k1,k2)``.
    """
    m = one_k.edges
    counts = {}
    for (k1, k2), probability in maximum_entropy_jdd(one_k).items():
        mu = 2 if k1 == k2 else 1
        counts[(k1, k2)] = 2.0 * m * probability / mu
    return counts


def stochastic_edge_probability_0k(zero_k: AverageDegree) -> float:
    """``p_0K = k̄ / n``."""
    return zero_k.edge_probability()


def stochastic_edge_probability_1k(q1: float, q2: float, nodes: int, mean_q: float) -> float:
    """``p_1K(q1, q2) = q1 q2 / (n q̄)`` capped at 1."""
    if nodes <= 0 or mean_q <= 0:
        return 0.0
    return min(1.0, q1 * q2 / (nodes * mean_q))


def stochastic_edge_probability_2k(
    q1: int, q2: int, jdd: JointDegreeDistribution
) -> float:
    """``p_2K(q1,q2) = (q̄/n) P(q1,q2) / (P(q1) P(q2))`` capped at 1."""
    one_k = jdd.to_lower()
    n = one_k.nodes
    if n == 0:
        return 0.0
    pmf_1k = one_k.pmf()
    p1 = pmf_1k.get(q1, 0.0)
    p2 = pmf_1k.get(q2, 0.0)
    if p1 == 0.0 or p2 == 0.0:
        return 0.0
    p_joint = jdd.pmf().get((q1, q2) if q1 <= q2 else (q2, q1), 0.0)
    qbar = one_k.average_degree()
    return min(1.0, (qbar / n) * p_joint / (p1 * p2))


def jdd_mutual_information(jdd: JointDegreeDistribution) -> float:
    """Mutual information of the JDD with respect to its edge-end marginals.

    1K-random graphs minimize this quantity (maximum joint entropy for the
    fixed marginals), so it acts as a scalar measure of how far a graph's
    degree correlations are from the maximum-entropy prediction.
    """
    pmf = jdd.pmf()
    if not pmf:
        return 0.0
    # marginal distribution of the degree found at a random edge end; pmf
    # values are ordered-pair probabilities on canonical keys, so an
    # off-diagonal key contributes its probability to both marginals.
    marginal: dict[int, float] = {}
    for (k1, k2), probability in pmf.items():
        marginal[k1] = marginal.get(k1, 0.0) + probability
        if k1 != k2:
            marginal[k2] = marginal.get(k2, 0.0) + probability
    info = 0.0
    for (k1, k2), probability in pmf.items():
        if probability <= 0:
            continue
        expected = marginal[k1] * marginal[k2]
        contribution = probability * math.log(probability / expected)
        if k1 != k2:
            contribution *= 2.0  # both ordered orientations
        info += contribution
    return info


__all__ = [
    "poisson_degree_pmf",
    "maximum_entropy_degree_distribution",
    "maximum_entropy_jdd",
    "expected_jdd_edge_counts",
    "stochastic_edge_probability_0k",
    "stochastic_edge_probability_1k",
    "stochastic_edge_probability_2k",
    "jdd_mutual_information",
]
