"""The dK-series core: distributions, extraction, distances, entropy, series.

Re-exports are lazy (PEP 562): everything here is pure Python except
``dk_random_graph``, which pulls in the NumPy-based construction algorithms
on first access.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "AverageDegree": "repro.core.distributions",
    "DegreeDistribution": "repro.core.distributions",
    "JointDegreeDistribution": "repro.core.distributions",
    "ThreeKDistribution": "repro.core.distributions",
    "average_degree": "repro.core.extraction",
    "degree_distribution": "repro.core.extraction",
    "joint_degree_distribution": "repro.core.extraction",
    "three_k_distribution": "repro.core.extraction",
    "dk_distribution": "repro.core.extraction",
    "dk_distance": "repro.core.distance",
    "graph_dk_distance": "repro.core.distance",
    "distance_0k": "repro.core.distance",
    "distance_1k": "repro.core.distance",
    "distance_2k": "repro.core.distance",
    "distance_3k": "repro.core.distance",
    "poisson_degree_pmf": "repro.core.entropy",
    "maximum_entropy_degree_distribution": "repro.core.entropy",
    "maximum_entropy_jdd": "repro.core.entropy",
    "expected_jdd_edge_counts": "repro.core.entropy",
    "dk_random_graph": "repro.core.randomness",
    "DKSeries": "repro.core.series",
    "SUPPORTED_D": "repro.core.series",
}

__all__ = list(_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
