"""The dK-series core: distributions, extraction, distances, entropy, series."""

from repro.core.distance import (
    distance_0k,
    distance_1k,
    distance_2k,
    distance_3k,
    dk_distance,
    graph_dk_distance,
)
from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
    ThreeKDistribution,
)
from repro.core.entropy import (
    expected_jdd_edge_counts,
    maximum_entropy_degree_distribution,
    maximum_entropy_jdd,
    poisson_degree_pmf,
)
from repro.core.extraction import (
    average_degree,
    degree_distribution,
    dk_distribution,
    joint_degree_distribution,
    three_k_distribution,
)
from repro.core.randomness import dk_random_graph
from repro.core.series import SUPPORTED_D, DKSeries

__all__ = [
    "AverageDegree",
    "DegreeDistribution",
    "JointDegreeDistribution",
    "ThreeKDistribution",
    "average_degree",
    "degree_distribution",
    "joint_degree_distribution",
    "three_k_distribution",
    "dk_distribution",
    "dk_distance",
    "graph_dk_distance",
    "distance_0k",
    "distance_1k",
    "distance_2k",
    "distance_3k",
    "poisson_degree_pmf",
    "maximum_entropy_degree_distribution",
    "maximum_entropy_jdd",
    "expected_jdd_edge_counts",
    "dk_random_graph",
    "DKSeries",
    "SUPPORTED_D",
]
