"""The dK-series: orchestration of extraction, inclusion and convergence.

A :class:`DKSeries` bundles the 0K..3K distributions of one input graph and
provides the operations the paper builds its methodology on:

* the *inclusion* property (``P_d`` determines ``P_{d-1}``), exposed as
  explicit projections plus a consistency check;
* distance of another graph to each level of the series (used to decide the
  smallest ``d`` that describes a topology "well enough");
* a compact summary used by the analysis/CLI layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.distance import dk_distance
from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
    ThreeKDistribution,
)
from repro.core.extraction import dk_distribution
from repro.graph.simple_graph import SimpleGraph

SUPPORTED_D = (0, 1, 2, 3)


@dataclass
class DKSeries:
    """The dK-distributions of one graph for ``d = 0..3``."""

    zero_k: AverageDegree
    one_k: DegreeDistribution
    two_k: JointDegreeDistribution
    three_k: ThreeKDistribution

    @classmethod
    def from_graph(cls, graph: SimpleGraph) -> "DKSeries":
        """Extract all supported dK-distributions from ``graph``."""
        return cls(
            zero_k=dk_distribution(graph, 0),
            one_k=dk_distribution(graph, 1),
            two_k=dk_distribution(graph, 2),
            three_k=dk_distribution(graph, 3),
        )

    def distribution(self, d: int):
        """The dK-distribution for ``d`` in ``{0, 1, 2, 3}``."""
        if d == 0:
            return self.zero_k
        if d == 1:
            return self.one_k
        if d == 2:
            return self.two_k
        if d == 3:
            return self.three_k
        raise ValueError(f"d must be one of {SUPPORTED_D}, got {d}")

    # ------------------------------------------------------------------ #
    # inclusion property
    # ------------------------------------------------------------------ #
    def verify_inclusion(self, tolerance: float = 1e-9) -> bool:
        """Check that each stored level projects onto the one below it.

        Returns ``True`` when the stored 1K/2K/3K distributions are mutually
        consistent (the 2K projects exactly onto the 1K, the 1K onto the 0K
        and the 3K carries the same 2K).  Extraction from a single graph
        always satisfies this; the check guards hand-assembled series.
        """
        if self.three_k.to_lower() != self.two_k:
            return False
        projected_one_k = self.two_k.to_lower()
        # degree-0 nodes are invisible to the JDD unless recorded explicitly
        if projected_one_k != self.one_k:
            return False
        projected_zero_k = self.one_k.to_lower()
        return (
            projected_zero_k.nodes == self.zero_k.nodes
            and projected_zero_k.edges == self.zero_k.edges
            and abs(projected_zero_k.average_degree - self.zero_k.average_degree) <= tolerance
        )

    # ------------------------------------------------------------------ #
    # distances / convergence
    # ------------------------------------------------------------------ #
    def distance_to_graph(self, graph: SimpleGraph, d: int) -> float:
        """``D_d`` between this series and the dK-distribution of ``graph``."""
        return dk_distance(self.distribution(d), dk_distribution(graph, d))

    def distances_to_graph(self, graph: SimpleGraph, ds: Iterable[int] = SUPPORTED_D) -> dict[int, float]:
        """``D_d`` for every requested ``d``."""
        return {d: self.distance_to_graph(graph, d) for d in ds}

    def matches_graph(self, graph: SimpleGraph, d: int) -> bool:
        """True when ``graph`` has exactly this series' dK-distribution at level ``d``."""
        return self.distance_to_graph(graph, d) == 0.0

    def smallest_matching_d(self, graph: SimpleGraph) -> int | None:
        """Largest ``d`` (within the supported range) whose distribution
        ``graph`` reproduces exactly, or ``None`` if not even 0K matches."""
        best: int | None = None
        for d in SUPPORTED_D:
            if self.matches_graph(graph, d):
                best = d
            else:
                break
        return best

    # ------------------------------------------------------------------ #
    # summary
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        """Compact numeric summary of the series (used by the CLI)."""
        return {
            "nodes": float(self.zero_k.nodes),
            "edges": float(self.zero_k.edges),
            "average_degree": self.zero_k.average_degree,
            "max_degree": float(self.one_k.max_degree()),
            "assortativity": self.two_k.assortativity(),
            "likelihood": self.two_k.likelihood(),
            "wedges": float(self.three_k.wedge_total),
            "triangles": float(self.three_k.triangle_total),
            "second_order_likelihood": self.three_k.second_order_likelihood(),
        }


__all__ = ["DKSeries", "SUPPORTED_D"]
