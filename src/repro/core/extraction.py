"""Extraction of dK-distributions from graphs (the paper's *analysis* side).

These functions implement the "dkdist" part of the paper's released tooling:
given an input graph, compute its 0K/1K/2K/3K-distribution.
"""

from __future__ import annotations

from repro.core.distributions import (
    AverageDegree,
    DegreeDistribution,
    JointDegreeDistribution,
    ThreeKDistribution,
)
from repro.graph.simple_graph import SimpleGraph
from repro.graph.subgraphs import triangle_degree_counts, wedge_degree_counts
from repro.kernels.backend import dispatch


def average_degree(graph: SimpleGraph) -> AverageDegree:
    """Extract the 0K-distribution (graph size and average degree)."""
    return AverageDegree(nodes=graph.number_of_nodes, edges=graph.number_of_edges)


def degree_distribution(graph: SimpleGraph) -> DegreeDistribution:
    """Extract the 1K-distribution (node degree distribution)."""
    return DegreeDistribution(graph.degree_histogram())


def joint_degree_distribution(
    graph: SimpleGraph, *, backend: str | None = None
) -> JointDegreeDistribution:
    """Extract the 2K-distribution (joint degree distribution over edges).

    Dispatches through the kernel backend registry: the vectorized CSR kernel
    and the pure-Python edge loop return identical integer counts.
    """
    counts, zero_degree = dispatch("jdd_counts", graph, backend)(graph)
    return JointDegreeDistribution(counts, zero_degree_nodes=zero_degree)


def three_k_distribution(graph: SimpleGraph) -> ThreeKDistribution:
    """Extract the 3K-distribution (wedge and triangle degree correlations)."""
    return ThreeKDistribution(
        wedges=wedge_degree_counts(graph),
        triangles=triangle_degree_counts(graph),
        jdd=joint_degree_distribution(graph),
    )


def dk_distribution(graph: SimpleGraph, d: int):
    """Extract the dK-distribution of ``graph`` for ``d`` in ``{0, 1, 2, 3}``."""
    if d == 0:
        return average_degree(graph)
    if d == 1:
        return degree_distribution(graph)
    if d == 2:
        return joint_degree_distribution(graph)
    if d == 3:
        return three_k_distribution(graph)
    raise ValueError(f"dK-distribution extraction is implemented for d in 0..3, got {d}")


__all__ = [
    "average_degree",
    "degree_distribution",
    "joint_degree_distribution",
    "three_k_distribution",
    "dk_distribution",
]
