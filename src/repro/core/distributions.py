"""Containers for the dK-distributions (d = 0, 1, 2, 3).

Each container stores *counts* of the corresponding subgraphs in an input
graph (the paper's convention in its worked example: ``P(2,3) = 2`` means
"two edges between 2- and 3-degree nodes"), and offers the normalized
probability view on top of the counts.

The inclusion property of the dK-series (``P_d`` determines ``P_{d-1}``) is
implemented as ``to_lower()`` projections:

* :class:`JointDegreeDistribution` -> :class:`DegreeDistribution` via
  ``k n(k) = Σ_{k'} m(k,k') (1 + [k = k'])``;
* :class:`DegreeDistribution` -> :class:`AverageDegree` via ``k̄ = Σ k P(k)``;
* :class:`ThreeKDistribution` carries its JDD, and can additionally re-derive
  it from wedge/triangle counts for consistency checks.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import DistributionError
from repro.graph.subgraphs import TriangleKey, WedgeKey, triangle_key, wedge_key


# --------------------------------------------------------------------------- #
# 0K
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AverageDegree:
    """The 0K-distribution: graph size and average degree."""

    nodes: int
    edges: int

    def __post_init__(self) -> None:
        if self.nodes < 0 or self.edges < 0:
            raise DistributionError("nodes and edges must be non-negative")

    @property
    def average_degree(self) -> float:
        """``k̄ = 2m / n`` (0 for the empty graph)."""
        if self.nodes == 0:
            return 0.0
        return 2.0 * self.edges / self.nodes

    def edge_probability(self) -> float:
        """Stochastic 0K edge probability ``p = k̄ / n`` (Erdős–Rényi)."""
        if self.nodes == 0:
            return 0.0
        return min(1.0, self.average_degree / self.nodes)


# --------------------------------------------------------------------------- #
# 1K
# --------------------------------------------------------------------------- #
@dataclass
class DegreeDistribution:
    """The 1K-distribution: number of nodes ``n(k)`` of each degree ``k``."""

    counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned: dict[int, int] = {}
        for degree, count in self.counts.items():
            if degree < 0:
                raise DistributionError(f"negative degree {degree}")
            if count < 0:
                raise DistributionError(f"negative count for degree {degree}")
            if count:
                cleaned[int(degree)] = int(count)
        self.counts = cleaned

    # -- basic quantities ------------------------------------------------- #
    @property
    def nodes(self) -> int:
        """Total number of nodes ``n``."""
        return sum(self.counts.values())

    @property
    def edges(self) -> int:
        """Total number of edges ``m`` implied by the degree counts."""
        stubs = sum(k * c for k, c in self.counts.items())
        if stubs % 2:
            raise DistributionError("degree counts imply an odd number of stubs")
        return stubs // 2

    @property
    def stub_count(self) -> int:
        """Total number of edge ends (``2m`` when the sequence is graphical)."""
        return sum(k * c for k, c in self.counts.items())

    def average_degree(self) -> float:
        """``k̄ = Σ k P(k)``."""
        n = self.nodes
        if n == 0:
            return 0.0
        return self.stub_count / n

    def max_degree(self) -> int:
        """Largest degree with a non-zero count (0 if empty)."""
        return max(self.counts, default=0)

    def pmf(self) -> dict[int, float]:
        """Normalized ``P(k) = n(k) / n``."""
        n = self.nodes
        if n == 0:
            return {}
        return {k: c / n for k, c in sorted(self.counts.items())}

    def degree_sequence(self) -> list[int]:
        """Expanded degree sequence (one entry per node), ascending degrees."""
        sequence: list[int] = []
        for degree in sorted(self.counts):
            sequence.extend([degree] * self.counts[degree])
        return sequence

    def entropy(self) -> float:
        """Shannon entropy of ``P(k)`` in nats."""
        return -sum(p * math.log(p) for p in self.pmf().values() if p > 0)

    # -- projections and constructors ------------------------------------- #
    def to_lower(self) -> AverageDegree:
        """Project to the 0K-distribution (inclusion property)."""
        return AverageDegree(nodes=self.nodes, edges=self.edges)

    @classmethod
    def from_degree_sequence(cls, degrees: Iterable[int]) -> "DegreeDistribution":
        """Build the distribution from an explicit degree sequence."""
        return cls(dict(Counter(int(k) for k in degrees)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DegreeDistribution):
            return NotImplemented
        return self.counts == other.counts


# --------------------------------------------------------------------------- #
# 2K
# --------------------------------------------------------------------------- #
@dataclass
class JointDegreeDistribution:
    """The 2K-distribution: number of edges ``m(k1, k2)`` per degree pair.

    Keys are canonical ``(k1, k2)`` with ``k1 <= k2``.  ``zero_degree_nodes``
    records nodes of degree zero, which are invisible to the edge counts but
    needed to reconstruct the exact node count of the original graph.
    """

    counts: dict[tuple[int, int], int] = field(default_factory=dict)
    zero_degree_nodes: int = 0

    def __post_init__(self) -> None:
        cleaned: dict[tuple[int, int], int] = {}
        for (k1, k2), count in self.counts.items():
            if k1 <= 0 or k2 <= 0:
                raise DistributionError(f"degrees in a JDD must be positive, got {(k1, k2)}")
            if count < 0:
                raise DistributionError(f"negative edge count for {(k1, k2)}")
            if count == 0:
                continue
            key = (k1, k2) if k1 <= k2 else (k2, k1)
            cleaned[key] = cleaned.get(key, 0) + int(count)
        self.counts = cleaned
        if self.zero_degree_nodes < 0:
            raise DistributionError("zero_degree_nodes must be non-negative")
        # validate that edge-end counts are divisible by the degree
        for degree, ends in self._edge_ends_per_degree().items():
            if ends % degree:
                raise DistributionError(
                    f"edge ends of degree {degree} ({ends}) are not divisible by the degree"
                )

    # -- basic quantities ------------------------------------------------- #
    @property
    def edges(self) -> int:
        """Total number of edges ``m``."""
        return sum(self.counts.values())

    def _edge_ends_per_degree(self) -> dict[int, int]:
        ends: dict[int, int] = {}
        for (k1, k2), count in self.counts.items():
            ends[k1] = ends.get(k1, 0) + count
            ends[k2] = ends.get(k2, 0) + count
        return ends

    def node_counts(self) -> dict[int, int]:
        """Number of nodes of each (positive) degree implied by the JDD."""
        return {k: ends // k for k, ends in self._edge_ends_per_degree().items()}

    @property
    def nodes(self) -> int:
        """Total number of nodes, including isolated (degree-0) ones."""
        return sum(self.node_counts().values()) + self.zero_degree_nodes

    def edge_count(self, k1: int, k2: int) -> int:
        """``m(k1, k2)`` for an arbitrary argument order."""
        key = (k1, k2) if k1 <= k2 else (k2, k1)
        return self.counts.get(key, 0)

    def pmf(self) -> dict[tuple[int, int], float]:
        """Normalized JDD ``P(k1,k2) = m(k1,k2) µ(k1,k2) / (2m)``."""
        m = self.edges
        if m == 0:
            return {}
        result = {}
        for (k1, k2), count in sorted(self.counts.items()):
            mu = 2 if k1 == k2 else 1
            result[(k1, k2)] = count * mu / (2.0 * m)
        return result

    def average_degree(self) -> float:
        """``k̄`` implied by the JDD (projected through the 1K-distribution)."""
        return self.to_lower().average_degree()

    def assortativity(self) -> float:
        """Pearson degree–degree correlation coefficient ``r`` over edges."""
        m = self.edges
        if m == 0:
            return 0.0
        sum_prod = 0.0
        sum_half = 0.0
        sum_half_sq = 0.0
        for (k1, k2), count in self.counts.items():
            sum_prod += count * k1 * k2
            sum_half += count * 0.5 * (k1 + k2)
            sum_half_sq += count * 0.5 * (k1 * k1 + k2 * k2)
        num = sum_prod / m - (sum_half / m) ** 2
        den = sum_half_sq / m - (sum_half / m) ** 2
        if den == 0:
            return 0.0
        return num / den

    def likelihood(self) -> float:
        """Likelihood ``S = Σ_{(u,v) in E} k_u k_v`` implied by the JDD."""
        return float(sum(count * k1 * k2 for (k1, k2), count in self.counts.items()))

    def entropy(self) -> float:
        """Shannon entropy (nats) of the normalized JDD."""
        return -sum(p * math.log(p) for p in self.pmf().values() if p > 0)

    # -- projections and constructors ------------------------------------- #
    def to_lower(self) -> DegreeDistribution:
        """Project to the 1K-distribution (inclusion property)."""
        counts = dict(self.node_counts())
        if self.zero_degree_nodes:
            counts[0] = counts.get(0, 0) + self.zero_degree_nodes
        return DegreeDistribution(counts)

    @classmethod
    def from_edge_degree_pairs(
        cls, pairs: Iterable[tuple[int, int]], zero_degree_nodes: int = 0
    ) -> "JointDegreeDistribution":
        """Build from an iterable of per-edge endpoint-degree pairs."""
        counter: Counter = Counter()
        for k1, k2 in pairs:
            key = (k1, k2) if k1 <= k2 else (k2, k1)
            counter[key] += 1
        return cls(dict(counter), zero_degree_nodes=zero_degree_nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JointDegreeDistribution):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.zero_degree_nodes == other.zero_degree_nodes
        )


# --------------------------------------------------------------------------- #
# 3K
# --------------------------------------------------------------------------- #
@dataclass
class ThreeKDistribution:
    """The 3K-distribution: wedge and triangle counts keyed by degrees.

    ``wedges`` maps ``(k_end_min, k_centre, k_end_max)`` to the number of
    *open* wedges with those degrees; ``triangles`` maps sorted degree triples
    to triangle counts.  The joint degree distribution of the same graph is
    carried along (``jdd``), both because the paper's inclusion property makes
    it available for free during extraction and because it is needed to seed
    2K-preserving rewiring toward a 3K target.
    """

    wedges: Counter = field(default_factory=Counter)
    triangles: Counter = field(default_factory=Counter)
    jdd: JointDegreeDistribution = field(default_factory=JointDegreeDistribution)

    def __post_init__(self) -> None:
        self.wedges = Counter({k: int(v) for k, v in self.wedges.items() if v})
        self.triangles = Counter({k: int(v) for k, v in self.triangles.items() if v})
        for (a, c, b), value in self.wedges.items():
            if value < 0:
                raise DistributionError("negative wedge count")
            if a > b:
                raise DistributionError(f"wedge key {(a, c, b)} is not canonical")
        for key, value in self.triangles.items():
            if value < 0:
                raise DistributionError("negative triangle count")
            if tuple(sorted(key)) != key:
                raise DistributionError(f"triangle key {key} is not canonical")

    # -- basic quantities ------------------------------------------------- #
    @property
    def wedge_total(self) -> int:
        """Total number of open wedges."""
        return sum(self.wedges.values())

    @property
    def triangle_total(self) -> int:
        """Total number of triangles."""
        return sum(self.triangles.values())

    @property
    def nodes(self) -> int:
        """Number of nodes (delegated to the embedded JDD)."""
        return self.jdd.nodes

    @property
    def edges(self) -> int:
        """Number of edges (delegated to the embedded JDD)."""
        return self.jdd.edges

    def second_order_likelihood(self) -> float:
        """``S2 ~ Σ k1 k3 P∧(k1,k2,k3)``: degree correlation at distance two.

        Computed over open wedges *and* triangles (a triangle contains three
        closed wedges), matching the definition of degree correlations of
        nodes located at distance two used in the paper's 2K-space
        explorations.
        """
        total = 0.0
        for (ka, _kc, kb), count in self.wedges.items():
            total += count * ka * kb
        for key, count in self.triangles.items():
            ka, kb, kc = key
            # each triangle contributes its three closed wedges
            total += count * (ka * kb + ka * kc + kb * kc)
        return total

    def mean_clustering_numerator(self) -> float:
        """``Σ k1 P△(k1,k2,k3)`` -- the triangle-concentration statistic."""
        total = 0.0
        for key, count in self.triangles.items():
            total += count * sum(key)
        return total

    # -- projections ------------------------------------------------------ #
    def to_lower(self) -> JointDegreeDistribution:
        """Project to the 2K-distribution (inclusion property)."""
        return self.jdd

    def implied_ordered_edge_ends(self) -> dict[tuple[int, int], int]:
        """Reconstruct ``ordered_edges(k1,k2) * (k2 - 1)`` from wedges/triangles.

        For every ordered edge ``(u, v)`` with degrees ``(k1, k2)``, node ``v``
        has ``k2 - 1`` further neighbours, and each of them closes either a
        wedge centred at ``v`` or a triangle.  Summing those incidences over
        the 3K counts therefore recovers the paper's projection formula
        ``P(k1,k2) ~ Σ_k {P∧ + P△} / (k2 - 1)``; this method returns the
        left-hand side prior to the division, which is exact for integer
        counts and is used by the consistency checks in the test-suite.
        """
        legs: Counter = Counter()
        for (ka, kc, kb), count in self.wedges.items():
            # wedge a - c - b: ordered edges (a, c) and (b, c) each see the
            # other endpoint as the "further neighbour".
            legs[(ka, kc)] += count
            legs[(kb, kc)] += count
        for key, count in self.triangles.items():
            ka, kb, kc = key
            degree_list = [ka, kb, kc]
            for i in range(3):
                for j in range(3):
                    if i == j:
                        continue
                    legs[(degree_list[i], degree_list[j])] += count
        return dict(legs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreeKDistribution):
            return NotImplemented
        return (
            self.wedges == other.wedges
            and self.triangles == other.triangles
            and self.jdd == other.jdd
        )


def canonical_wedge_counts(raw: Mapping[WedgeKey, int]) -> Counter:
    """Re-canonicalize an arbitrary wedge-count mapping."""
    counts: Counter = Counter()
    for (a, c, b), value in raw.items():
        counts[wedge_key(c, a, b)] += value
    return counts


def canonical_triangle_counts(raw: Mapping[TriangleKey, int]) -> Counter:
    """Re-canonicalize an arbitrary triangle-count mapping."""
    counts: Counter = Counter()
    for key, value in raw.items():
        counts[triangle_key(*key)] += value
    return counts


__all__ = [
    "AverageDegree",
    "DegreeDistribution",
    "JointDegreeDistribution",
    "ThreeKDistribution",
    "canonical_wedge_counts",
    "canonical_triangle_counts",
]
