"""Evaluation topologies: synthetic HOT-like and AS-level graphs plus a registry."""

from repro.topologies.as_level import as_like_statistics, synthetic_as_topology
from repro.topologies.hot import hot_like_statistics, synthetic_hot_topology
from repro.topologies.registry import (
    TopologySpec,
    available_topologies,
    build_topology,
    get_topology_spec,
    register,
)

__all__ = [
    "synthetic_as_topology",
    "as_like_statistics",
    "synthetic_hot_topology",
    "hot_like_statistics",
    "TopologySpec",
    "available_topologies",
    "build_topology",
    "get_topology_spec",
    "register",
]
