"""Synthetic AS-level (skitter-like) Internet topology.

The paper's AS-level inputs are the CAIDA skitter, RouteViews BGP and RIPE
WHOIS snapshots of March 2004 (skitter: 9204 nodes, 28959 edges, ``k̄ ≈ 6.3``,
``r ≈ -0.24``, ``C̄ ≈ 0.46``).  Those data files cannot be shipped here, so
:func:`synthetic_as_topology` grows a graph with the same qualitative
structure:

* heavy-tailed (power-law-like) degree distribution with a small dense core
  of very high degree "tier-1" ASes,
* disassortative mixing (low-degree customer ASes attach to high-degree
  providers),
* substantial clustering concentrated on low/medium degrees (triad
  formation between customers of a common provider, peering edges).

The growth model combines preferential attachment, triad formation
(Holme–Kim style) and an extra population of degree-1/2 customer stubs.
All dK-series experiments only compare generated dK-random graphs against
this *original*, so the qualitative convergence results (1K already close,
2K everything but clustering, 3K everything) carry over.
"""

from __future__ import annotations


from repro.graph.components import giant_component
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def synthetic_as_topology(
    nodes: int = 2000,
    *,
    attachment_edges: int = 3,
    triad_probability: float = 0.55,
    stub_fraction: float = 0.30,
    seed_clique: int = 6,
    tier1_count: int = 12,
    tier1_attraction: float = 0.5,
    rng: RngLike = None,
) -> SimpleGraph:
    """Grow a skitter-like AS topology with ``nodes`` nodes.

    Parameters
    ----------
    nodes:
        Total number of nodes (default 2000 keeps the pure-Python metric
        sweeps laptop-friendly; pass 9204 for the paper-scale graph).
    attachment_edges:
        Number of provider links each non-stub AS creates when it joins
        (drives the average degree).
    triad_probability:
        Probability that an additional link closes a triangle with the
        previously chosen provider's neighbours (drives clustering).
    stub_fraction:
        Fraction of nodes that join as degree-1 customer stubs attached
        preferentially to high-degree providers (drives disassortativity and
        the heavy low-degree tail).
    seed_clique:
        Size of the initial fully-meshed "tier-1" core.
    tier1_count, tier1_attraction:
        Customer stubs attach, with probability ``tier1_attraction``, to one
        of the ``tier1_count`` highest-degree providers instead of a generic
        preferential target.  This concentrates stub customers on a handful of
        very-high-degree transit ASes, reproducing the pronounced hub tail and
        the disassortative mixing of measured AS topologies.
    """
    rng = ensure_rng(rng)
    if nodes < seed_clique + 2:
        raise ValueError("nodes must exceed the seed clique size")
    if not 0 <= stub_fraction < 1:
        raise ValueError("stub_fraction must lie in [0, 1)")

    graph = SimpleGraph(seed_clique)
    for i in range(seed_clique):
        for j in range(i + 1, seed_clique):
            graph.add_edge(i, j)

    # repeated-endpoint list: preferential attachment by sampling edge ends
    endpoint_pool: list[int] = []
    for u, v in graph.edges():
        endpoint_pool.append(u)
        endpoint_pool.append(v)

    def attach_preferentially(exclude: set[int]) -> int:
        for _ in range(50):
            candidate = endpoint_pool[int(rng.integers(len(endpoint_pool)))]
            if candidate not in exclude:
                return candidate
        # fall back to a uniformly random node
        for _ in range(200):
            candidate = int(rng.integers(graph.number_of_nodes))
            if candidate not in exclude:
                return candidate
        return next(iter(set(range(graph.number_of_nodes)) - exclude))

    stub_count = int(stub_fraction * nodes)
    growth_count = nodes - seed_clique - stub_count

    for _ in range(growth_count):
        new_node = graph.add_node()
        chosen: set[int] = set()
        last_provider: int | None = None
        edges_to_add = min(attachment_edges, graph.number_of_nodes - 1)
        while len(chosen) < edges_to_add:
            target: int | None = None
            if (
                last_provider is not None
                and rng.random() < triad_probability
            ):
                # triad formation: connect to a neighbour of the last provider
                neighbours = [
                    x for x in graph.neighbors(last_provider)
                    if x != new_node and x not in chosen
                ]
                if neighbours:
                    target = neighbours[int(rng.integers(len(neighbours)))]
            if target is None:
                target = attach_preferentially(chosen | {new_node})
            if target == new_node or target in chosen:
                continue
            graph.add_edge(new_node, target)
            chosen.add(target)
            endpoint_pool.append(new_node)
            endpoint_pool.append(target)
            last_provider = target

    # degree-1/2 customer stubs attach preferentially to providers, with a
    # strong bias toward a handful of very-high-degree "tier-1" transit ASes
    degrees = graph.degrees()
    tier1 = sorted(range(graph.number_of_nodes), key=lambda v: degrees[v], reverse=True)
    tier1 = tier1[: max(1, tier1_count)]

    def attach_stub(exclude: set[int]) -> int:
        if rng.random() < tier1_attraction:
            candidates = [v for v in tier1 if v not in exclude]
            if candidates:
                weights = [graph.degree(v) + 1 for v in candidates]
                total = float(sum(weights))
                pick = rng.random() * total
                running = 0.0
                for candidate, weight in zip(candidates, weights):
                    running += weight
                    if pick <= running:
                        return candidate
                return candidates[-1]
        return attach_preferentially(exclude)

    for _ in range(stub_count):
        new_node = graph.add_node()
        provider = attach_stub({new_node})
        graph.add_edge(new_node, provider)
        endpoint_pool.append(new_node)
        endpoint_pool.append(provider)
        # a minority of stubs are multi-homed (two providers)
        if rng.random() < 0.25:
            second = attach_stub({new_node, provider})
            if not graph.has_edge(new_node, second):
                graph.add_edge(new_node, second)
                endpoint_pool.append(new_node)
                endpoint_pool.append(second)

    return giant_component(graph)


def as_like_statistics(graph: SimpleGraph) -> dict[str, float]:
    """Structural fingerprint used by the tests: k̄, max degree, and the share
    of degree-1 and degree-2 nodes (AS graphs are dominated by stub ASes)."""
    degrees = graph.degrees()
    n = graph.number_of_nodes
    low_degree = sum(1 for k in degrees if k <= 2)
    return {
        "average_degree": graph.average_degree(),
        "max_degree": float(max(degrees, default=0)),
        "low_degree_fraction": low_degree / n if n else 0.0,
    }


__all__ = ["synthetic_as_topology", "as_like_statistics"]
