"""Named topology registry.

Benchmarks, examples and the CLI refer to the evaluation topologies by name
(``"hot"``, ``"skitter_like"``...).  Each entry records the generator, its
parameters and the role the topology plays in the paper, and produces the
graph deterministically from a fixed seed so that experiment tables are
reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph.simple_graph import SimpleGraph
from repro.topologies.as_level import synthetic_as_topology
from repro.topologies.hot import synthetic_hot_topology


@dataclass(frozen=True)
class TopologySpec:
    """A named, reproducible evaluation topology."""

    name: str
    description: str
    paper_counterpart: str
    builder: Callable[..., SimpleGraph]
    parameters: dict = field(default_factory=dict)
    seed: int = 20060911  # SIGCOMM'06 began on September 11, 2006

    def build(self, *, seed: int | None = None) -> SimpleGraph:
        """Construct the topology (deterministic unless ``seed`` overrides)."""
        return self.builder(rng=self.seed if seed is None else seed, **self.parameters)


_REGISTRY: dict[str, TopologySpec] = {}


def register(spec: TopologySpec) -> None:
    """Add a topology to the registry (overwrites an existing name)."""
    _REGISTRY[spec.name] = spec


def get_topology_spec(name: str) -> TopologySpec:
    """Look up a registered topology by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown topology {name!r}; known topologies: {known}") from None


def build_topology(name: str, *, seed: int | None = None) -> SimpleGraph:
    """Build a registered topology by name."""
    return get_topology_spec(name).build(seed=seed)


def available_topologies() -> list[str]:
    """Sorted list of registered topology names."""
    return sorted(_REGISTRY)


register(
    TopologySpec(
        name="hot",
        description="HOT-like router-level topology (~939 nodes, almost a tree, "
        "high-degree gateways at the periphery)",
        paper_counterpart="HOT graph of Li et al. [19] (939 nodes / 988 edges)",
        builder=synthetic_hot_topology,
        parameters={"target_nodes": 939},
    )
)

register(
    TopologySpec(
        name="hot_small",
        description="Small HOT-like topology for fast tests (~200 nodes)",
        paper_counterpart="scaled-down HOT graph",
        builder=synthetic_hot_topology,
        parameters={"target_nodes": 200, "core_size": 6, "hosts_range": (2, 30)},
    )
)

register(
    TopologySpec(
        name="skitter_like",
        description="Skitter-like AS topology at benchmark scale (~2000 nodes)",
        paper_counterpart="CAIDA skitter AS topology, March 2004 (9204 nodes / 28959 edges)",
        builder=synthetic_as_topology,
        parameters={"nodes": 2000},
    )
)

register(
    TopologySpec(
        name="skitter_like_small",
        description="Small skitter-like AS topology for fast tests (~400 nodes)",
        paper_counterpart="scaled-down skitter AS topology",
        builder=synthetic_as_topology,
        parameters={"nodes": 400},
    )
)

register(
    TopologySpec(
        name="skitter_like_full",
        description="Skitter-like AS topology at the paper's scale (9204 nodes)",
        paper_counterpart="CAIDA skitter AS topology, March 2004 (9204 nodes / 28959 edges)",
        builder=synthetic_as_topology,
        parameters={"nodes": 9204},
    )
)

register(
    TopologySpec(
        name="whois_like",
        description="WHOIS-like AS topology: denser and more clustered than skitter",
        paper_counterpart="RIPE WHOIS AS topology, March 2004",
        builder=synthetic_as_topology,
        parameters={"nodes": 2000, "attachment_edges": 5, "triad_probability": 0.7},
    )
)

register(
    TopologySpec(
        name="bgp_like",
        description="BGP-like AS topology: sparser view of the AS graph",
        paper_counterpart="RouteViews BGP AS topology, March 2004",
        builder=synthetic_as_topology,
        parameters={"nodes": 2000, "attachment_edges": 2, "triad_probability": 0.45},
    )
)


__all__ = [
    "TopologySpec",
    "register",
    "get_topology_spec",
    "build_topology",
    "available_topologies",
]
