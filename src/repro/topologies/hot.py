"""Synthetic HOT-like router-level topology.

The paper evaluates the dK-series on the HOT topology of Li et al. (939
nodes, 988 edges): a router-level network produced by Heuristically Optimal
Topology design.  Its defining structural features -- the reason the paper
uses it as the *hard* case -- are:

* it is almost a tree (``k̄ ≈ 2.1``, clustering ``C̄ ≈ 0``),
* high-degree nodes sit at the *periphery* (access/gateway routers
  aggregating many degree-1 end hosts), not in the core,
* the low-degree core forms a sparse mesh, which makes the topology strongly
  disassortative (``r ≈ -0.22``) and gives it a large average distance.

The original data file is not distributable here, so
:func:`synthetic_hot_topology` builds a topology with the same engineering
structure: a sparse low-degree core ring/mesh, a layer of gateway routers
hanging off the core, and heavy-tailed bundles of degree-1 hosts attached to
the gateways.  The dK-series experiments that use it (Tables 3, 4, 5, 8 and
Figures 3, 5, 8, 9) only rely on these structural features, not on the exact
original edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.components import giant_component
from repro.graph.simple_graph import SimpleGraph
from repro.utils.rng import RngLike, ensure_rng


def _truncated_pareto(rng: np.random.Generator, minimum: int, maximum: int, alpha: float) -> int:
    """A heavy-tailed integer in ``[minimum, maximum]`` (Pareto-like)."""
    u = rng.random()
    # inverse-CDF sampling of a bounded Pareto distribution
    h_min = minimum ** (-alpha)
    h_max = maximum ** (-alpha)
    value = (h_min - u * (h_min - h_max)) ** (-1.0 / alpha)
    return int(min(maximum, max(minimum, round(value))))


def synthetic_hot_topology(
    target_nodes: int = 939,
    *,
    core_size: int = 12,
    core_extra_links: int = 3,
    gateways_per_core: tuple[int, int] = (2, 4),
    hosts_range: tuple[int, int] = (2, 80),
    hosts_alpha: float = 0.9,
    gateway_mesh_probability: float = 0.35,
    dual_homed_fraction: float = 0.08,
    rng: RngLike = None,
) -> SimpleGraph:
    """Build a HOT-like router-level topology of roughly ``target_nodes`` nodes.

    Parameters
    ----------
    target_nodes:
        Approximate total node count (core + gateways + hosts); host bundles
        are added until the target is reached.
    core_size:
        Number of low-degree core routers, connected in a ring.
    core_extra_links:
        Extra random chords added to the core ring (keeps the core sparse but
        not a pure cycle).
    gateways_per_core:
        Inclusive range of the number of gateway routers attached to each
        core router.
    hosts_range, hosts_alpha:
        Bounded-Pareto parameters of the number of degree-1 hosts attached to
        each gateway; the heavy tail creates the high-degree *peripheral*
        nodes characteristic of HOT.
    gateway_mesh_probability:
        Probability that a gateway also links to the next gateway of the same
        core router (local redundancy links); softens the disassortativity to
        the level of the original HOT graph.
    dual_homed_fraction:
        Fraction of hosts connected to two gateways instead of one.
    """
    rng = ensure_rng(rng)
    if target_nodes < core_size + 2:
        raise ValueError("target_nodes is too small for the requested core")

    graph = SimpleGraph(core_size)
    # sparse core ring
    for i in range(core_size):
        graph.add_edge(i, (i + 1) % core_size)
    # a few chords so the core is a sparse mesh rather than a cycle
    added = 0
    attempts = 0
    while added < core_extra_links and attempts < 100 * max(core_extra_links, 1):
        attempts += 1
        u = int(rng.integers(core_size))
        v = int(rng.integers(core_size))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1

    # gateway layer
    gateways: list[int] = []
    low, high = gateways_per_core
    for core_router in range(core_size):
        local_gateways: list[int] = []
        for _ in range(int(rng.integers(low, high + 1))):
            gateway = graph.add_node()
            graph.add_edge(core_router, gateway)
            gateways.append(gateway)
            local_gateways.append(gateway)
        # occasional redundancy links between gateways of the same core router
        for first, second in zip(local_gateways, local_gateways[1:]):
            if rng.random() < gateway_mesh_probability:
                graph.add_edge(first, second)
    if not gateways:
        gateway = graph.add_node()
        graph.add_edge(0, gateway)
        gateways.append(gateway)

    # host bundles until the node budget is spent; gateways are revisited in
    # round-robin random order so host counts stay heavy-tailed per gateway
    order = list(gateways)
    rng.shuffle(order)
    index = 0
    while graph.number_of_nodes < target_nodes:
        gateway = order[index % len(order)]
        index += 1
        bundle = _truncated_pareto(rng, hosts_range[0], hosts_range[1], hosts_alpha)
        bundle = min(bundle, target_nodes - graph.number_of_nodes)
        for _ in range(bundle):
            host = graph.add_node()
            graph.add_edge(gateway, host)
            if rng.random() < dual_homed_fraction:
                other = order[int(rng.integers(len(order)))]
                if other != gateway and not graph.has_edge(host, other):
                    graph.add_edge(host, other)
        if bundle == 0:
            break

    return giant_component(graph)


def hot_like_statistics(graph: SimpleGraph) -> dict[str, float]:
    """Quick structural fingerprint used by tests: k̄, share of degree-1 nodes,
    and the degree of the highest-degree node's neighbours (peripheral hubs
    have low-degree neighbours only through the core)."""
    degrees = graph.degrees()
    n = graph.number_of_nodes
    degree_one = sum(1 for k in degrees if k == 1)
    hub = max(graph.nodes(), key=lambda v: degrees[v])
    hub_neighbor_mean = (
        sum(degrees[u] for u in graph.neighbors(hub)) / degrees[hub] if degrees[hub] else 0.0
    )
    return {
        "average_degree": graph.average_degree(),
        "degree_one_fraction": degree_one / n if n else 0.0,
        "max_degree": float(max(degrees, default=0)),
        "hub_neighbor_mean_degree": hub_neighbor_mean,
    }


__all__ = ["synthetic_hot_topology", "hot_like_statistics"]
