"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` works in fully offline environments where
the ``wheel`` package (required by PEP 660 editable installs) is unavailable.
"""

from setuptools import setup

setup()
